"""Unit and property tests for buffers and the 2K-tuple buffer map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import StreamGeometry
from repro.core.buffer import (
    BufferMap,
    CacheBuffer,
    SyncBuffer,
    combined_prefix_end,
)


class TestSyncBuffer:
    def test_empty_state(self):
        buf = SyncBuffer()
        assert buf.count == 0
        assert buf.head == -1

    def test_in_order_reception(self):
        buf = SyncBuffer()
        for i in range(5):
            assert buf.receive(i) == 1
        assert buf.head == 4
        assert buf.count == 5

    def test_out_of_order_held_pending(self):
        buf = SyncBuffer()
        assert buf.receive(2) == 0
        assert buf.head == -1
        assert buf.pending == {2}

    def test_gap_fill_drains_pending(self):
        buf = SyncBuffer()
        buf.receive(1)
        buf.receive(2)
        advanced = buf.receive(0)
        assert advanced == 3
        assert buf.head == 2
        assert buf.pending == frozenset()

    def test_duplicates_ignored(self):
        buf = SyncBuffer()
        buf.receive(0)
        assert buf.receive(0) == 0
        assert buf.count == 1

    def test_duplicate_pending_ignored(self):
        buf = SyncBuffer()
        buf.receive(5)
        buf.receive(5)
        assert buf.pending == {5}

    def test_nonzero_start(self):
        buf = SyncBuffer(start=100)
        assert buf.head == 99
        buf.receive(100)
        assert buf.head == 100

    def test_pre_start_blocks_ignored(self):
        buf = SyncBuffer(start=100)
        assert buf.receive(50) == 0
        assert buf.head == 99

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SyncBuffer(start=-1)

    def test_receive_range(self):
        buf = SyncBuffer()
        assert buf.receive_range(0, 9) == 10
        assert buf.head == 9

    def test_receive_range_partially_overlapping(self):
        buf = SyncBuffer()
        buf.receive_range(0, 4)
        assert buf.receive_range(3, 7) == 3
        assert buf.head == 7

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            SyncBuffer().receive_range(5, 4)

    @given(st.permutations(list(range(25))))
    @settings(max_examples=100, deadline=None)
    def test_property_any_order_converges(self, order):
        buf = SyncBuffer()
        total = sum(buf.receive(i) for i in order)
        assert total == 25
        assert buf.head == 24
        assert buf.pending == frozenset()

    @given(st.lists(st.integers(0, 60), min_size=1, max_size=120))
    @settings(max_examples=100, deadline=None)
    def test_property_head_contiguity_invariant(self, arrivals):
        """All indices <= head were received; none beyond head+pending."""
        buf = SyncBuffer()
        seen = set()
        for idx in arrivals:
            buf.receive(idx)
            seen.add(idx)
            # invariant: contiguous prefix covered by seen
            for j in range(buf.start, buf.head + 1):
                assert j in seen
            # pending are all strictly beyond the head
            assert all(p > buf.head for p in buf.pending)


class TestCacheBuffer:
    def test_window_bounds(self):
        cache = CacheBuffer(window=10)
        assert cache.oldest_available(head=20) == 11
        assert cache.available(20, 11)
        assert cache.available(20, 20)
        assert not cache.available(20, 10)
        assert not cache.available(20, 21)

    def test_window_clamped_at_zero(self):
        cache = CacheBuffer(window=10)
        assert cache.oldest_available(head=3) == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            CacheBuffer(window=0)


class TestBufferMap:
    def test_wire_roundtrip(self):
        bm = BufferMap(heads=(10, 11, 8, 9), subscriptions=(True, False, True, False))
        assert BufferMap.from_tuple(bm.as_tuple()) == bm

    def test_as_tuple_is_2k(self):
        bm = BufferMap(heads=(1, 2, 3), subscriptions=(False, False, True))
        assert bm.as_tuple() == (1, 2, 3, 0, 0, 1)

    def test_max_min_heads(self):
        bm = BufferMap(heads=(10, 25, 8, 9), subscriptions=(False,) * 4)
        assert bm.max_head == 25  # the "m" of Section IV.A
        assert bm.min_head == 8   # the "n"

    def test_empty_heads_are_minus_one(self):
        bm = BufferMap(heads=(-1, -1), subscriptions=(False, False))
        assert bm.max_head == -1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            BufferMap(heads=(1, 2), subscriptions=(True,))

    def test_zero_substreams_rejected(self):
        with pytest.raises(ValueError):
            BufferMap(heads=(), subscriptions=())

    def test_heads_below_minus_one_rejected(self):
        with pytest.raises(ValueError):
            BufferMap(heads=(-2,), subscriptions=(False,))

    def test_from_tuple_odd_length_rejected(self):
        with pytest.raises(ValueError):
            BufferMap.from_tuple((1, 2, 3))

    def test_head_local(self):
        g = StreamGeometry(4)
        bm = BufferMap.from_local_heads([5, 5, 4, 4], g)
        assert bm.head_local(0, g) == 5
        assert bm.head_local(3, g) == 4

    def test_from_local_heads_empty_marker(self):
        g = StreamGeometry(2)
        bm = BufferMap.from_local_heads([-1, 3], g)
        assert bm.heads[0] == -1
        assert bm.head_local(0, g) == -1

    def test_from_local_heads_global_encoding(self):
        g = StreamGeometry(4)
        bm = BufferMap.from_local_heads([2, 2, 2, 2], g)
        # local index 2 on substream i is global 4*2 + i
        assert bm.heads == (8, 9, 10, 11)

    @given(
        k=st.integers(1, 8),
        heads=st.lists(st.integers(-1, 1000), min_size=1, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_wire_roundtrip(self, k, heads):
        heads = tuple(heads[:k]) + (0,) * max(0, k - len(heads))
        subs = tuple(h % 2 == 0 for h in heads)
        bm = BufferMap(heads=heads, subscriptions=subs)
        assert BufferMap.from_tuple(bm.as_tuple()) == bm


class TestCombination:
    def test_fig2b_example(self):
        """Fig. 2b: combination stops awaiting a block from one sub-stream."""
        # 4 sub-streams; sub-stream 3 (0-indexed) is one block short
        counts = [3, 3, 3, 1]
        k = 4
        # first missing global seq on sub 3 is 3 + 4*1 = 7
        assert combined_prefix_end(counts, k) == 7

    def test_all_equal_counts(self):
        assert combined_prefix_end([2, 2], 2) == 4

    def test_zero_counts(self):
        assert combined_prefix_end([0, 0, 0], 3) == 0

    def test_limited_by_first_substream(self):
        assert combined_prefix_end([1, 5, 5], 3) == 3

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            combined_prefix_end([1, 2], 3)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            combined_prefix_end([-1, 0], 2)

    @given(counts=st.lists(st.integers(0, 50), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_property_prefix_really_continuous(self, counts):
        k = len(counts)
        end = combined_prefix_end(counts, k)
        # every global seq < end is covered; seq == end is not
        for s in range(end):
            assert s // k < counts[s % k]
        assert end // k >= counts[end % k]
