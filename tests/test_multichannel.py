"""Tests for multi-channel deployments and the channel-surfing audience."""

import numpy as np
import pytest

from repro.analysis import SessionTable
from repro.core.multichannel import MultiChannelDeployment
from repro.workload.surfing import ChannelAudience, zipf_popularity


@pytest.fixture
def deployment(small_cfg):
    return MultiChannelDeployment(3, small_cfg, seed=5)


class TestZipf:
    def test_normalized(self):
        w = zipf_popularity(5, skew=1.0)
        assert w.sum() == pytest.approx(1.0)

    def test_rank_ordering(self):
        w = zipf_popularity(5, skew=1.2)
        assert (np.diff(w) < 0).all()

    def test_zero_skew_uniform(self):
        w = zipf_popularity(4, skew=0.0)
        assert np.allclose(w, 0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_popularity(0)
        with pytest.raises(ValueError):
            zipf_popularity(3, skew=-1.0)


class TestDeployment:
    def test_channels_share_the_clock(self, deployment):
        deployment.run(until=50.0)
        for ch in deployment.channels:
            assert ch.engine is deployment.engine
            assert ch.engine.now == 50.0

    def test_channels_have_independent_overlays(self, deployment):
        a = deployment.channel(0).spawn_peer(user_id=1)
        deployment.run(until=60.0)
        assert deployment.channel(0).concurrent_users == 1
        assert deployment.channel(1).concurrent_users == 0
        # the peer's partners all live in its own channel
        for pid in a.partners.ids():
            assert deployment.channel(0).get_node(pid) is not None
            assert deployment.channel(1).get_node(pid) is None

    def test_ids_disjoint_across_channels(self, deployment):
        a = deployment.channel(0).spawn_peer(user_id=1)
        b = deployment.channel(1).spawn_peer(user_id=2)
        assert a.node_id != b.node_id
        assert a.session_id != b.session_id

    def test_merged_log_sorted(self, deployment):
        deployment.channel(0).spawn_peer(user_id=1)
        deployment.channel(1).spawn_peer(user_id=2)
        deployment.run(until=60.0)
        arrivals = [e.arrival_time for e in deployment.merged_log().entries()]
        assert arrivals == sorted(arrivals)

    def test_needs_at_least_one_channel(self, small_cfg):
        with pytest.raises(ValueError):
            MultiChannelDeployment(0, small_cfg)

    def test_channel_seeds_independent(self, small_cfg):
        dep = MultiChannelDeployment(2, small_cfg, seed=5)
        a = dep.channel(0).rng.stream("population").random(20)
        b = dep.channel(1).rng.stream("population").random(20)
        assert not np.allclose(a, b)


class TestAudience:
    def make_audience(self, deployment, n=40, zap=0.3, zap_after=60.0):
        rng = np.random.default_rng(1)
        times = np.sort(rng.uniform(0, 40, n))
        return ChannelAudience(
            deployment, arrival_times=times,
            zap_probability=zap, zap_after_s=zap_after,
        )

    def test_popular_channel_gets_most_viewers(self, deployment):
        audience = self.make_audience(deployment, n=60, zap=0.0)
        deployment.run(until=200.0)
        counts = deployment.audience_by_channel()
        assert counts[0] == max(counts)
        assert sum(counts) > 40

    def test_zapping_creates_sessions(self, deployment):
        audience = self.make_audience(deployment, n=40, zap=0.5)
        deployment.run(until=400.0)
        assert audience.zap_count > 0
        table = SessionTable.from_log(deployment.merged_log())
        # sessions = arrivals + zaps + retries
        assert len(table) >= 40 + audience.zap_count

    def test_zapped_viewer_keeps_single_live_session(self, deployment):
        audience = self.make_audience(deployment, n=30, zap=0.6)
        deployment.run(until=500.0)
        live_by_user = {}
        for ch in deployment.channels:
            for peer in ch.peers(alive_only=True):
                live_by_user.setdefault(peer.user_id, 0)
                live_by_user[peer.user_id] += 1
        assert all(n == 1 for n in live_by_user.values())

    def test_staggered_program_endings(self, small_cfg):
        """One channel's program ends; its audience drops, others keep
        watching -- the Fig. 5a partial-collapse mechanism."""
        dep = MultiChannelDeployment(2, small_cfg, seed=7)
        rng = np.random.default_rng(2)
        times = np.sort(rng.uniform(0, 30, 40))
        audience = ChannelAudience(
            dep, arrival_times=times, zap_probability=0.0,
            popularity_skew=0.0,  # even split
        )
        dep.run(until=150.0)
        before = dep.audience_by_channel()
        # end channel 0's program: everyone watching it leaves
        from repro.telemetry.reports import LeaveReason

        for peer in dep.channel(0).peers(alive_only=True):
            peer.leave(LeaveReason.PROGRAM_END)
        dep.run(until=200.0)
        after = dep.audience_by_channel()
        assert after[0] < max(1, before[0])
        assert after[1] >= 0.7 * before[1]

    def test_zap_histogram_covers_all_arrived(self, deployment):
        audience = self.make_audience(deployment, n=25, zap=0.4)
        deployment.run(until=400.0)
        assert sum(audience.zap_histogram().values()) >= 20

    def test_zap_probability_validation(self, deployment):
        with pytest.raises(ValueError):
            ChannelAudience(deployment, arrival_times=[1.0],
                            zap_probability=1.5)
