"""Tests for ``python -m repro campaign`` (and its dispatch from the
main CLI)."""

import json

import pytest

from repro.experiments.cli import main

QUICK = "tests.campaign_helpers:quick_experiment"


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({
        "name": "cli-test",
        "entries": [{"experiment": QUICK, "seeds": [0, 1, 2, 3]}],
    }))
    return path


def run_cli(*args):
    return main(["campaign", *args])


class TestCampaignRun:
    def test_run_executes_and_exits_zero(self, spec_file, tmp_path, capsys):
        store = tmp_path / "store"
        assert run_cli("run", str(spec_file), "--store", str(store),
                       "--jobs", "2") == 0
        out = capsys.readouterr().out
        assert "4 executed, 0 cached" in out
        assert "cli-test" in out

    def test_second_invocation_hits_cache(self, spec_file, tmp_path, capsys):
        store = tmp_path / "store"
        assert run_cli("run", str(spec_file), "--store", str(store)) == 0
        capsys.readouterr()
        assert run_cli("run", str(spec_file), "--store", str(store)) == 0
        assert "0 executed, 4 cached" in capsys.readouterr().out

    def test_bad_spec_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "entries": []}))
        assert run_cli("run", str(bad)) == 2
        assert "error: bad spec" in capsys.readouterr().err

    def test_missing_spec_exits_two(self, tmp_path, capsys):
        assert run_cli("run", str(tmp_path / "absent.json")) == 2
        assert "error: bad spec" in capsys.readouterr().err

    def test_unknown_experiment_fails_runs_exit_one(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "nope",
            "entries": [{"experiment": "definitely-not-registered"}],
        }))
        assert run_cli("run", str(spec), "--store",
                       str(tmp_path / "s")) == 1
        assert "failed" in capsys.readouterr().out

    def test_failed_run_exits_one(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "boom",
            "entries": [{
                "experiment": "tests.campaign_helpers:broken_experiment",
                "seeds": [0],
            }],
        }))
        assert run_cli("run", str(spec), "--store", str(tmp_path / "s"),
                       "--retries", "0") == 1

    def test_out_artifact_and_quiet(self, spec_file, tmp_path, capsys):
        out_json = tmp_path / "artifact.json"
        assert run_cli("run", str(spec_file), "--store",
                       str(tmp_path / "s"), "--quiet",
                       "--out", str(out_json)) == 0
        printed = capsys.readouterr().out
        assert "experiment | seed" not in printed  # table suppressed
        assert "4 executed" in printed             # summary line kept
        data = json.loads(out_json.read_text())
        assert data["counts"]["executed"] == 4
        assert {r["seed"] for r in data["runs"]} == {0, 1, 2, 3}

    def test_metrics_out_writes_obs_series(self, spec_file, tmp_path):
        metrics = tmp_path / "m.jsonl"
        assert run_cli("run", str(spec_file), "--store",
                       str(tmp_path / "s"), "--quiet",
                       "--metrics-out", str(metrics)) == 0
        lines = [json.loads(l) for l in metrics.read_text().splitlines()]
        assert lines
        manifest = json.loads((tmp_path / "m.manifest.json").read_text())
        assert manifest["scenario"] == "campaign:cli-test"

    def test_resume_without_journal_exits_two(self, spec_file, tmp_path,
                                              capsys):
        assert run_cli("run", str(spec_file), "--store",
                       str(tmp_path / "s"), "--resume") == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_continues_after_partial_store(self, spec_file, tmp_path,
                                                  capsys):
        store = tmp_path / "store"
        assert run_cli("run", str(spec_file), "--store", str(store)) == 0
        capsys.readouterr()
        assert run_cli("run", str(spec_file), "--store", str(store),
                       "--resume") == 0
        captured = capsys.readouterr()
        assert "resuming campaign" in captured.err
        assert "0 executed, 4 cached" in captured.out


class TestCampaignStatusClean:
    def test_status_empty_store(self, tmp_path, capsys):
        assert run_cli("status", "--store", str(tmp_path / "void")) == 0
        assert "no journalled campaigns" in capsys.readouterr().out

    def test_status_lists_campaigns(self, spec_file, tmp_path, capsys):
        store = tmp_path / "store"
        run_cli("run", str(spec_file), "--store", str(store), "--quiet")
        capsys.readouterr()
        assert run_cli("status", "--store", str(store)) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert "complete" in out
        assert "4 cached objects" in out

    def test_status_follow_exits_when_terminal(self, spec_file, tmp_path,
                                               capsys):
        store = tmp_path / "store"
        run_cli("run", str(spec_file), "--store", str(store), "--quiet")
        capsys.readouterr()
        # every campaign is terminal, so --follow prints once and returns
        assert run_cli("status", "--store", str(store), "--follow",
                       "--interval", "0.01") == 0
        assert "complete" in capsys.readouterr().out

    def test_status_follow_rejects_bad_interval(self, tmp_path, capsys):
        assert run_cli("status", "--store", str(tmp_path / "s"),
                       "--follow", "--interval", "0") == 2
        assert "--interval" in capsys.readouterr().err

    def test_run_log_spill_flag_spills_run_logs(self, spec_file, tmp_path,
                                                capsys, monkeypatch):
        from repro.telemetry.sink import SPILL_ENV_VAR

        monkeypatch.delenv(SPILL_ENV_VAR, raising=False)
        store = tmp_path / "store"
        spill = tmp_path / "spill"
        assert run_cli("run", str(spec_file), "--store", str(store),
                       "--jobs", "1", "--quiet",
                       "--log-spill", str(spill)) == 0
        assert "4 executed" in capsys.readouterr().out
        # the flag reaches workers via the environment
        import os
        assert os.environ.get(SPILL_ENV_VAR) == str(spill)
        monkeypatch.delenv(SPILL_ENV_VAR, raising=False)

    def test_clean_empties_store(self, spec_file, tmp_path, capsys):
        store = tmp_path / "store"
        run_cli("run", str(spec_file), "--store", str(store), "--quiet")
        capsys.readouterr()
        assert run_cli("clean", "--store", str(store)) == 0
        assert "removed 4" in capsys.readouterr().out
        assert run_cli("status", "--store", str(store)) == 0
        assert "no journalled campaigns" in capsys.readouterr().out


class TestMainCliIntegration:
    def test_list_mentions_campaign(self, capsys):
        assert main(["list"]) == 0
        assert "campaign" in capsys.readouterr().out

    def test_fig9_accepts_jobs_flag(self, capsys):
        # tiny check that --jobs parses and threads through (not a perf test)
        assert main(["model", "--quiet", "--jobs", "1"]) == 0
