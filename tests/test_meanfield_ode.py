"""The mean-field ODE backend and the vectorized-step property suite.

Three layers of assurance for the million-user path:

* conservation/monotonicity invariants of the population ODE under
  hypothesis-seeded workloads (peers in <= arrivals, continuity in
  [0, 1], non-negative deficit, monotone session counts);
* protocol-surface conformance -- registration, log shape, panel
  subsampling, the ``run`` CLI;
* the regression pin for the `_pending_joins` retry fallback: a retry
  whose user has no recorded departure deadline fails loudly instead of
  inventing one.

The heavyweight fast-vs-detailed payload equivalence lives in
test_crossvalidation.py; here the three-way parity run is one small
end-to-end scenario so the suite stays fast.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.fastsim import FastSimulation
from repro.model.meanfield import MeanFieldBackend, MeanFieldConfig
from repro.runtime.backends import available_engines
from repro.runtime.driver import run_scenario, sample_workload
from repro.runtime.parity import PAIR_TOLERANCES, run_parity_suite
from repro.telemetry.reports import ActivityEvent, ActivityReport
from repro.workload.scenarios import steady_audience


def tiny_scenario(rate=0.3, horizon=150.0, servers=2):
    # the 5-minute report cadence would outlast a tiny horizon, so
    # compress it (the small_audience parity preset does the same)
    cfg = SystemConfig().with_overrides(status_report_period_s=30.0)
    return steady_audience(
        rate_per_s=rate, horizon_s=horizon, n_servers=servers, cfg=cfg)


def _activity_events(log):
    return list(log.reports_of(ActivityReport))


class TestRegistration:
    def test_ode_engine_registered(self):
        assert "ode" in available_engines()

    def test_run_scenario_dispatches(self):
        result = run_scenario(tiny_scenario(), seed=0, engine="ode")
        assert isinstance(result.backend, MeanFieldBackend)
        events = _activity_events(result.log)
        assert any(e.event == ActivityEvent.JOIN for e in events)
        assert any(e.event == ActivityEvent.PLAYER_READY for e in events)
        snap = result.metrics()
        for key in ("concurrent_users", "playing_users", "mean_continuity",
                    "mean_deficit_blocks", "panel_weight"):
            assert key in snap

    def test_parity_pairs_calibrated(self):
        assert ("detailed", "ode") in PAIR_TOLERANCES
        assert ("fast", "ode") in PAIR_TOLERANCES


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"dt": 0.0},
        {"dt": -1.0},
        {"max_logged_users": 0},
        {"catchup_factor": 0.5},
        {"nat_parent_prob": 1.5},
        {"nat_parent_prob": -0.1},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MeanFieldConfig(**kwargs)

    def test_defaults_valid(self):
        cfg = MeanFieldConfig()
        assert cfg.dt > 0


def _stepped_backend(scenario, seed, **cfg_kwargs):
    wl = sample_workload(scenario, seed)
    backend = MeanFieldBackend(
        scenario, seed,
        ode=MeanFieldConfig(**cfg_kwargs) if cfg_kwargs else None)
    backend.apply_workload(wl.times, wl.durations)
    for t, p in wl.endings:
        backend.add_program_ending(t, p)
    return backend, wl


class TestOdeInvariants:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           rate=st.floats(min_value=0.05, max_value=0.8))
    def test_population_invariants_under_random_workloads(self, seed, rate):
        scenario = tiny_scenario(rate=rate, horizon=120.0)
        backend, wl = _stepped_backend(scenario, seed)
        n_total = wl.times.size
        last_sessions = 0.0
        t = 0.0
        while t < scenario.horizon_s:
            t += 20.0
            backend.run(t)
            snap = backend.snapshot_metrics()
            # peers in the system never exceed cumulative arrivals
            arrived = int((wl.times <= backend.now).sum())
            assert snap["concurrent_users"] <= arrived + 1e-9
            assert snap["playing_users"] <= snap["concurrent_users"] + 1e-9
            # continuity is a fraction (NaN only before anyone plays)
            mc = snap["mean_continuity"]
            assert math.isnan(mc) or 0.0 <= mc <= 1.0
            # deficit is a non-negative block count
            assert snap["mean_deficit_blocks"] >= 0.0
            # session counter is monotone and bounded by retries cap
            assert snap["sessions_spawned"] >= last_sessions
            last_sessions = snap["sessions_spawned"]
        cap = n_total * (scenario.cfg.max_join_retries + 1)
        assert last_sessions <= cap + 1e-9

    def test_log_is_conserved(self):
        scenario = tiny_scenario()
        result = run_scenario(scenario, seed=0, engine="ode")
        events = _activity_events(result.log)
        joins = sum(1 for e in events if e.event == ActivityEvent.JOIN)
        leaves = sum(1 for e in events if e.event == ActivityEvent.LEAVE)
        readies = sum(
            1 for e in events if e.event == ActivityEvent.PLAYER_READY)
        assert leaves <= joins
        assert readies <= joins
        # log times are monotone (the analysis folds rely on this)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_workload_can_only_be_applied_once(self):
        backend, wl = _stepped_backend(tiny_scenario(), 0)
        with pytest.raises(RuntimeError):
            backend.apply_workload(wl.times, wl.durations)


class TestPanelSubsampling:
    def test_weighted_panel_scales_population(self):
        scenario = tiny_scenario(rate=0.6, horizon=120.0)
        full, wl = _stepped_backend(scenario, 3)
        panel, _ = _stepped_backend(scenario, 3, max_logged_users=10)
        full.run(scenario.horizon_s)
        panel.run(scenario.horizon_s)
        n = wl.times.size
        snap = panel.snapshot_metrics()
        assert snap["panel_users"] <= 10
        assert snap["panel_weight"] == pytest.approx(
            n / snap["panel_users"])
        # the log only carries the panel...
        users = {e.user_id for e in _activity_events(panel.log)}
        assert len(users) <= 10
        # ...but the population estimate stays in the full-run ballpark
        full_peak = full.snapshot_metrics()["sessions_spawned"]
        assert snap["sessions_spawned"] == pytest.approx(
            full_peak, rel=0.35, abs=5.0)


class TestThreeWayParity:
    def test_small_scenario_passes_calibrated_bands(self):
        reports = run_parity_suite(
            tiny_scenario(), seed=0, engines=("detailed", "fast", "ode"))
        assert len(reports) == 3  # all pairs
        for report in reports:
            assert report.ok, report.render()


class TestFastEngineProperties:
    """Hypothesis-seeded small-N property checks for the batched step."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           n_users=st.integers(min_value=5, max_value=40))
    def test_random_workloads_keep_books_balanced(self, seed, n_users):
        cfg = SystemConfig(n_servers=2)
        sim = FastSimulation(cfg, seed=seed, capacity_hint=256)
        rng = np.random.default_rng(seed + 7)
        times = np.sort(rng.uniform(0, 60, n_users))
        durs = rng.exponential(80, n_users) + 10
        sim.add_arrivals(times, durs)
        sim.run(150.0)
        # children counters conserved against the parent matrix
        assert (sim.children >= 0).all()
        assert int(sim.children.sum()) == int((sim.parent >= 0).sum())
        # every join in the log has at most one leave per session
        events = _activity_events(sim.log)
        sessions_joined = {e.session_id for e in events
                           if e.event == ActivityEvent.JOIN}
        leaves = [e.session_id for e in events
                  if e.event == ActivityEvent.LEAVE]
        assert len(leaves) == len(set(leaves))
        assert set(leaves) <= sessions_joined
        # retry attempts never exceed the configured cap
        attempts = {}
        for e in events:
            if e.event == ActivityEvent.JOIN:
                attempts[e.user_id] = max(
                    attempts.get(e.user_id, 0), e.attempt)
        assert all(a <= cfg.max_join_retries + 1 for a in attempts.values())


class TestRetryDeadlineRegression:
    """The `_pending_joins` NaN sentinel must resolve through
    `_user_deadline` -- never a silently invented deadline."""

    def test_orphan_retry_fails_loudly(self):
        sim = FastSimulation(SystemConfig(n_servers=1), seed=0)
        sim._pending_joins = [(0.0, 7, 2, float("nan"))]
        with pytest.raises(RuntimeError, match="out of sync"):
            sim.step()

    def test_recorded_deadline_is_used(self):
        sim = FastSimulation(SystemConfig(n_servers=1), seed=0)
        sim._user_deadline[7] = 500.0
        sim._pending_joins = [(0.0, 7, 2, float("nan"))]
        sim.step()
        slot = int(np.nonzero(sim.user_id == 7)[0][0])
        assert sim.depart_at[slot] == pytest.approx(500.0)

    def test_end_to_end_retries_keep_first_deadline(self):
        # a user that retries must keep departing at first-join + duration
        cfg = SystemConfig(n_servers=1)
        sim = FastSimulation(cfg, seed=1)
        sim.add_arrivals(np.array([1.0]), np.array([200.0]))
        sim.run(60.0)
        assert sim._user_deadline.get(0) == pytest.approx(201.0)


class TestRunCli:
    def test_small_ode_run(self, capsys):
        from repro.experiments.run_cli import main as run_main
        rc = run_main(["--engine", "ode", "--users", "400",
                       "--horizon", "90", "--servers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "paper metrics" in out
        assert "engine snapshot" in out

    def test_unknown_scenario_is_usage_error(self, capsys):
        from repro.experiments.run_cli import main as run_main
        rc = run_main(["--scenario", "nope"])
        assert rc == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_dispatch_from_repro_cli(self, capsys):
        from repro.experiments.cli import main as cli_main
        rc = cli_main(["run", "--engine", "ode", "--users", "200",
                       "--horizon", "60", "--servers", "2"])
        assert rc == 0
        assert "wall=" in capsys.readouterr().out
