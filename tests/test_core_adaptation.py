"""Unit tests for the adaptation rules (Inequalities 1-2, cool-down)."""

import pytest

from repro.core.adaptation import (
    CooldownTimer,
    choose_parent,
    inequality1_ok,
    inequality2_ok,
    qualified_parents,
    substream_lag,
)
from repro.core.blocks import StreamGeometry
from repro.core.buffer import BufferMap
from repro.core.partnership import Direction, PartnerState


def partner(node_id, local_heads, geometry):
    state = PartnerState(node_id=node_id, direction=Direction.OUTGOING,
                         established_at=0.0)
    bm = BufferMap.from_local_heads(local_heads, geometry)
    state.update_bm(bm, now=0.0)
    return state


@pytest.fixture
def geometry():
    return StreamGeometry(4)


class TestInequality1:
    def test_synchronized_substreams_ok(self):
        assert inequality1_ok([100, 100, 99, 100], substream=2, ts_blocks=10)

    def test_lagging_substream_violates(self):
        heads = [100, 100, 88, 100]
        assert substream_lag(heads, 2) == 12
        assert not inequality1_ok(heads, 2, ts_blocks=10)

    def test_boundary_is_strict(self):
        heads = [100, 90]
        assert not inequality1_ok(heads, 1, ts_blocks=10)  # lag == T_s fails
        assert inequality1_ok(heads, 1, ts_blocks=10.5)

    def test_most_advanced_substream_never_lags(self):
        assert inequality1_ok([50, 40, 30], substream=0, ts_blocks=1)


class TestInequality2:
    def test_parent_near_best_ok(self):
        assert inequality2_ok(parent_head_local=95, best_partner_head_local=100,
                              tp_blocks=15)

    def test_lagging_parent_violates(self):
        assert not inequality2_ok(80, 100, tp_blocks=15)

    def test_unknown_parent_head_grace(self):
        assert inequality2_ok(-1, 100, tp_blocks=15)

    def test_unknown_best_grace(self):
        assert inequality2_ok(100, -1, tp_blocks=15)

    def test_boundary_strict(self):
        assert not inequality2_ok(85, 100, tp_blocks=15)
        assert inequality2_ok(86, 100, tp_blocks=15)


class TestCooldown:
    def test_initially_ready(self):
        assert CooldownTimer(20.0).ready(now=0.0)

    def test_blocks_after_fire(self):
        timer = CooldownTimer(20.0)
        timer.fire(now=100.0)
        assert not timer.ready(now=110.0)
        assert timer.ready(now=120.0)

    def test_disabled_timer_always_ready(self):
        timer = CooldownTimer(20.0, enabled=False)
        timer.fire(now=100.0)
        assert timer.ready(now=100.1)

    def test_negative_ta_rejected(self):
        with pytest.raises(ValueError):
            CooldownTimer(-1.0)

    def test_last_adaptation_recorded(self):
        timer = CooldownTimer(5.0)
        timer.fire(42.0)
        assert timer.last_adaptation == 42.0


class TestQualification:
    def test_advanced_partner_qualifies(self, geometry):
        partners = [partner(2, [100, 100, 100, 100], geometry)]
        got = qualified_parents(partners, substream=0, own_head=90,
                                best_partner_head_local=100, tp_blocks=15,
                                geometry=geometry)
        assert [s.node_id for s in got] == [2]

    def test_behind_partner_disqualified(self, geometry):
        partners = [partner(2, [80, 80, 80, 80], geometry)]
        got = qualified_parents(partners, 0, own_head=90,
                                best_partner_head_local=100, tp_blocks=15,
                                geometry=geometry)
        assert got == []

    def test_inequality2_filters_laggards(self, geometry):
        # partner is ahead of us but way behind the best partner
        partners = [
            partner(2, [60, 60, 60, 60], geometry),
            partner(3, [100, 100, 100, 100], geometry),
        ]
        got = qualified_parents(partners, 0, own_head=50,
                                best_partner_head_local=100, tp_blocks=15,
                                geometry=geometry)
        assert [s.node_id for s in got] == [3]

    def test_excluded_partner_skipped(self, geometry):
        partners = [partner(2, [100] * 4, geometry)]
        got = qualified_parents(partners, 0, own_head=90,
                                best_partner_head_local=100, tp_blocks=15,
                                geometry=geometry, exclude=(2,))
        assert got == []

    def test_partner_without_bm_skipped(self, geometry):
        state = PartnerState(node_id=5, direction=Direction.OUTGOING,
                             established_at=0.0)
        got = qualified_parents([state], 0, own_head=0,
                                best_partner_head_local=10, tp_blocks=15,
                                geometry=geometry)
        assert got == []

    def test_cache_window_disqualifies_too_old_need(self, geometry):
        # candidate head 100, window 30: it can serve from 71 onwards;
        # we need block 41 -> long gone
        partners = [partner(2, [100] * 4, geometry)]
        got = qualified_parents(partners, 0, own_head=40,
                                best_partner_head_local=100, tp_blocks=150,
                                geometry=geometry, cache_window=30)
        assert got == []

    def test_cache_window_allows_recent_need(self, geometry):
        partners = [partner(2, [100] * 4, geometry)]
        got = qualified_parents(partners, 0, own_head=80,
                                best_partner_head_local=100, tp_blocks=150,
                                geometry=geometry, cache_window=30)
        assert [s.node_id for s in got] == [2]


class TestChoice:
    def test_empty_candidates_returns_none(self, geometry, rng):
        assert choose_parent([], 0, geometry, rng) is None

    def test_random_choice_uses_all_candidates(self, geometry, rng):
        cands = [partner(i, [100] * 4, geometry) for i in range(2, 7)]
        chosen = {
            choose_parent(cands, 0, geometry, rng, policy="random").node_id
            for _ in range(200)
        }
        assert chosen == {2, 3, 4, 5, 6}

    def test_best_policy_picks_most_advanced(self, geometry, rng):
        cands = [
            partner(2, [90] * 4, geometry),
            partner(3, [110] * 4, geometry),
            partner(4, [100] * 4, geometry),
        ]
        assert choose_parent(cands, 0, geometry, rng, policy="best").node_id == 3

    def test_unknown_policy_rejected(self, geometry, rng):
        with pytest.raises(ValueError):
            choose_parent([partner(2, [1] * 4, geometry)], 0, geometry, rng,
                          policy="fifo")
