"""Tests for the seed-replication utility."""

import math

import pytest

from repro.experiments.render import FigureResult
from repro.experiments.replication import (
    MetricSummary,
    replicate,
)


def fake_experiment(*, seed: int) -> FigureResult:
    """A deterministic pseudo-experiment with seed-dependent metrics."""
    fr = FigureResult("Fig. F", "fake")
    fr.metrics["value"] = 10.0 + seed
    fr.metrics["constant"] = 5.0
    if seed % 2 == 0:
        fr.metrics["sometimes"] = float(seed)
    else:
        fr.metrics["sometimes"] = float("nan")
    return fr


class TestMetricSummary:
    def test_basic_aggregation(self):
        s = MetricSummary.from_samples("m", [1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.min == 1.0 and s.max == 3.0
        assert s.n == 3
        assert s.spread == 2.0
        assert s.std == pytest.approx(1.0)

    def test_single_sample_zero_std(self):
        s = MetricSummary.from_samples("m", [4.0])
        assert s.std == 0.0
        assert s.n == 1

    def test_nans_excluded(self):
        s = MetricSummary.from_samples("m", [1.0, float("nan"), 3.0])
        assert s.n == 2
        assert s.mean == 2.0

    def test_all_nan(self):
        s = MetricSummary.from_samples("m", [float("nan")])
        assert s.n == 0
        assert math.isnan(s.mean)

    def test_spread_is_nan_when_empty(self):
        """n == 0 must yield NaN spread, not a misleading 0 or a
        nan-arithmetic surprise."""
        s = MetricSummary.from_samples("m", [])
        assert s.n == 0
        assert math.isnan(s.spread)
        assert math.isnan(MetricSummary.from_samples("m", [float("nan")]).spread)

    def test_spread_nonempty(self):
        assert MetricSummary.from_samples("m", [1.0, 4.0]).spread == 3.0

    def test_to_dict(self):
        d = MetricSummary.from_samples("m", [1.0, 3.0]).to_dict()
        assert d == {"mean": 2.0, "std": pytest.approx(math.sqrt(2)),
                     "min": 1.0, "max": 3.0, "n": 2}


class TestReplicate:
    def test_aggregates_across_seeds(self):
        rep = replicate(fake_experiment, seeds=(0, 1, 2))
        assert rep.get("value").mean == pytest.approx(11.0)
        assert rep.get("value").n == 3
        assert rep.get("constant").std == 0.0
        # the sometimes-NaN metric only counts the finite replicates
        assert rep.get("sometimes").n == 2

    def test_kwargs_forwarded(self):
        calls = []

        def exp(*, seed, extra):
            calls.append((seed, extra))
            fr = FigureResult("x", "x")
            fr.metrics["m"] = float(seed + extra)
            return fr

        rep = replicate(exp, seeds=(3, 4), extra=10)
        assert calls == [(3, 10), (4, 10)]
        assert rep.get("m").min == 13.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(fake_experiment, seeds=())

    def test_render_contains_metrics(self):
        rep = replicate(fake_experiment, seeds=(0, 1), name="fake")
        out = rep.render()
        assert "fake" in out
        assert "value" in out
        assert "mean" in out

    def test_unknown_metric_raises(self):
        rep = replicate(fake_experiment, seeds=(0,))
        with pytest.raises(KeyError):
            rep.get("nope")

    def test_per_seed_samples_kept(self):
        """Raw per-seed values ride along so aggregation layers (campaign
        artifacts, error bars) never re-run experiments."""
        rep = replicate(fake_experiment, seeds=(0, 1, 2))
        assert rep.samples["value"] == [10.0, 11.0, 12.0]
        assert rep.samples["constant"] == [5.0, 5.0, 5.0]
        # NaN replicates are preserved in samples (dropped only in summaries)
        assert rep.samples["sometimes"][0] == 0.0
        assert math.isnan(rep.samples["sometimes"][1])

    def test_render_includes_per_seed_values(self):
        rep = replicate(fake_experiment, seeds=(0, 1))
        out = rep.render()
        assert "per-seed" in out
        assert "10,11" in out

    def test_to_json_includes_samples_and_summaries(self):
        import json

        rep = replicate(fake_experiment, seeds=(0, 1))
        data = json.loads(rep.to_json())
        assert data["seeds"] == [0, 1]
        assert data["samples"]["value"] == [10.0, 11.0]
        assert data["summaries"]["value"]["mean"] == 10.5
        assert data["summaries"]["value"]["n"] == 2

    def test_real_experiment_replication(self):
        """Replicate the (cheap) dynamics validation across seeds: the
        Eq. 6 Monte Carlo error must stay small for every seed."""
        from repro.experiments import validate_dynamics_equations

        rep = replicate(validate_dynamics_equations, seeds=(0, 1, 2))
        summary = rep.get("eq6_max_abs_error")
        assert summary.n == 3
        assert summary.max < 0.02
