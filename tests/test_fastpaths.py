"""Regression tests for the optimized hot paths.

Each fast path must be behaviourally identical to the general path it
shortcuts; these tests pin the boundary cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffer import SyncBuffer
from repro.core.stream import UploadScheduler
from repro.network.fairshare import waterfill
from repro.sim.engine import Engine, Event


class TestSyncBufferBulkPath:
    def test_bulk_path_with_pending_falls_back(self):
        buf = SyncBuffer()
        buf.receive(5)  # pending gap
        advanced = buf.receive_range(0, 7)
        assert advanced == 8
        assert buf.head == 7
        assert buf.pending == frozenset()

    def test_bulk_path_entirely_behind_head(self):
        buf = SyncBuffer()
        buf.receive_range(0, 9)
        assert buf.receive_range(2, 7) == 0
        assert buf.head == 9

    def test_bulk_path_overlapping_head(self):
        buf = SyncBuffer()
        buf.receive_range(0, 4)
        assert buf.receive_range(3, 8) == 4
        assert buf.head == 8

    @given(
        ranges=st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 20)),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_property_range_vs_single_equivalence(self, ranges):
        """receive_range == a sequence of single receives, always."""
        bulk = SyncBuffer()
        single = SyncBuffer()
        for first, span in ranges:
            last = first + span
            a = bulk.receive_range(first, last)
            b = sum(single.receive(i) for i in range(first, last + 1))
            assert a == b
        assert bulk.head == single.head
        assert bulk.pending == single.pending


class TestDeliverFastPath:
    def test_underloaded_matches_waterfill_exactly(self):
        """When capacity covers demand, the fast path and waterfill agree."""
        demands = [1.0, 1.0, 12.0]
        assert np.allclose(waterfill(100.0, demands), demands)

    def test_delivery_identical_across_paths(self):
        # same scenario, capacities straddling the fast-path threshold
        def run(cap):
            sched = UploadScheduler(cap, 1.0, 1.0)
            for c in range(3):
                sched.subscribe(c, 0, 1, now=0.0)
            got = {c: 0 for c in range(3)}

            def push(conn, first, last):
                got[conn.child_id] += last - first + 1

            for head in range(1, 21):
                sched.deliver(1.0, [head], lambda h: 0, push)
            return got

        ample = run(100.0)   # fast path
        exact = run(3.0)     # exactly at the threshold (sum of demands)
        assert ample == exact  # all caught-up children track live rate


class TestEventOrdering:
    def test_lt_by_time_then_seq(self):
        a = Event(1.0, 5, lambda: None)
        b = Event(1.0, 6, lambda: None)
        c = Event(0.5, 99, lambda: None)
        assert c < a < b
        assert not (b < a)

    def test_slots_prevent_dict_bloat(self):
        ev = Event(0.0, 0, lambda: None)
        with pytest.raises(AttributeError):
            ev.extra = 1  # __slots__ keeps the hot object lean

    def test_heap_order_stability_after_optimization(self):
        eng = Engine()
        order = []
        for i in range(50):
            eng.schedule(float(i % 3), lambda i=i: order.append(i))
        eng.run()
        # within each timestamp, insertion order is preserved
        by_time = {0: [], 1: [], 2: []}
        for i in order:
            by_time[i % 3].append(i)
        for ids in by_time.values():
            assert ids == sorted(ids)
