"""Regression tests for the optimized hot paths.

Each fast path must be behaviourally identical to the general path it
shortcuts; these tests pin the boundary cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffer import SyncBuffer
from repro.core.stream import UploadScheduler
from repro.network.fairshare import waterfill
from repro.sim.engine import Engine, Event, PeriodicTask


class TestSyncBufferBulkPath:
    def test_bulk_path_with_pending_falls_back(self):
        buf = SyncBuffer()
        buf.receive(5)  # pending gap
        advanced = buf.receive_range(0, 7)
        assert advanced == 8
        assert buf.head == 7
        assert buf.pending == frozenset()

    def test_bulk_path_entirely_behind_head(self):
        buf = SyncBuffer()
        buf.receive_range(0, 9)
        assert buf.receive_range(2, 7) == 0
        assert buf.head == 9

    def test_bulk_path_overlapping_head(self):
        buf = SyncBuffer()
        buf.receive_range(0, 4)
        assert buf.receive_range(3, 8) == 4
        assert buf.head == 8

    @given(
        ranges=st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 20)),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_property_range_vs_single_equivalence(self, ranges):
        """receive_range == a sequence of single receives, always."""
        bulk = SyncBuffer()
        single = SyncBuffer()
        for first, span in ranges:
            last = first + span
            a = bulk.receive_range(first, last)
            b = sum(single.receive(i) for i in range(first, last + 1))
            assert a == b
        assert bulk.head == single.head
        assert bulk.pending == single.pending


class TestDeliverFastPath:
    def test_underloaded_matches_waterfill_exactly(self):
        """When capacity covers demand, the fast path and waterfill agree."""
        demands = [1.0, 1.0, 12.0]
        assert np.allclose(waterfill(100.0, demands), demands)

    def test_delivery_identical_across_paths(self):
        # same scenario, capacities straddling the fast-path threshold
        def run(cap):
            sched = UploadScheduler(cap, 1.0, 1.0)
            for c in range(3):
                sched.subscribe(c, 0, 1, now=0.0)
            got = {c: 0 for c in range(3)}

            def push(conn, first, last):
                got[conn.child_id] += last - first + 1

            for head in range(1, 21):
                sched.deliver(1.0, [head], 1 << 30, push)
            return got

        ample = run(100.0)   # fast path
        exact = run(3.0)     # exactly at the threshold (sum of demands)
        assert ample == exact  # all caught-up children track live rate


class TestEventOrdering:
    def test_lt_by_time_then_seq(self):
        a = Event(1.0, 5, lambda: None)
        b = Event(1.0, 6, lambda: None)
        c = Event(0.5, 99, lambda: None)
        assert c < a < b
        assert not (b < a)

    def test_slots_prevent_dict_bloat(self):
        ev = Event(0.0, 0, lambda: None)
        with pytest.raises(AttributeError):
            ev.extra = 1  # __slots__ keeps the hot object lean

    def test_heap_order_stability_after_optimization(self):
        eng = Engine()
        order = []
        for i in range(50):
            eng.schedule(float(i % 3), lambda i=i: order.append(i))
        eng.run()
        # within each timestamp, insertion order is preserved
        by_time = {0: [], 1: [], 2: []}
        for i in order:
            by_time[i % 3].append(i)
        for ids in by_time.values():
            assert ids == sorted(ids)


class TestLiveEventCounter:
    """``len(engine)`` is an O(1) counter; it must track the heap exactly."""

    @staticmethod
    def _brute_force(eng):
        return sum(1 for _t, _s, ev in eng._heap if not ev.cancelled)

    def test_counter_matches_brute_force_under_cancel_heavy_workload(self):
        eng = Engine()
        rng = np.random.default_rng(42)
        live = []
        for _step in range(1500):
            action = int(rng.integers(0, 3))
            if action == 0 or not live:
                live.append(eng.schedule(float(rng.integers(0, 100)),
                                         lambda: None))
            elif action == 1:
                live.pop(int(rng.integers(0, len(live)))).cancel()
            else:
                # double-cancel must not decrement the counter twice
                ev = live[int(rng.integers(0, len(live)))]
                ev.cancel()
                ev.cancel()
            assert len(eng) == self._brute_force(eng)

    def test_counter_through_partial_and_full_runs(self):
        eng = Engine()
        evs = [eng.schedule(float(i), lambda: None) for i in range(100)]
        for ev in evs[::3]:
            ev.cancel()
        eng.run(max_events=20)
        assert len(eng) == self._brute_force(eng)
        eng.run()
        assert len(eng) == 0 == self._brute_force(eng)

    def test_cancel_after_firing_is_a_counted_noop(self):
        eng = Engine()
        fired_ev = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        eng.run(until=1.5)
        assert len(eng) == 1
        # the back-reference is detached on pop: a late cancel of an event
        # that already fired must not corrupt the live count
        fired_ev.cancel()
        assert len(eng) == 1 == self._brute_force(eng)


class TestHeapCompaction:
    def test_bulk_cancel_triggers_compaction_and_preserves_order(self):
        eng = Engine()
        fired = []
        keep_ids = []
        cancels = []
        for i in range(600):
            if i % 4 == 0:
                keep_ids.append(i)
                eng.schedule(float(i), lambda i=i: fired.append(i))
            else:
                cancels.append(eng.schedule(float(i), lambda: None))
        assert eng.heap_compactions == 0
        for ev in cancels:
            ev.cancel()
        assert eng.heap_compactions >= 1
        assert len(eng) == len(keep_ids)
        assert len(eng) == sum(1 for _t, _s, ev in eng._heap
                               if not ev.cancelled)
        eng.run()
        assert fired == keep_ids  # survivors fire in their original order
        assert eng.events_processed == len(keep_ids)
        # every cancelled entry is accounted for exactly once, whether it
        # was removed by the compactor or skipped lazily by the loop
        assert eng.events_cancelled == len(cancels)


class TestTimerBucketing:
    def test_same_cadence_tasks_share_one_heap_entry(self):
        eng = Engine()
        fired = []
        tasks = [PeriodicTask(eng, 5.0, lambda i=i: fired.append(i))
                 for i in range(10)]
        assert len(eng) == 1  # one shared entry, not ten
        eng.run(until=5.0)
        assert fired == list(range(10))  # members fire in registration order
        assert tasks[0].period == 5.0

    def test_bucketed_order_equals_per_task_event_order(self):
        """Bucketing is an optimization: the observable firing sequence must
        match what individually scheduled per-task events would produce."""
        periods = [2.0, 3.0, 2.0, 5.0, 3.0, 2.0]
        horizon = 30.0

        eng_b = Engine()
        log_b = []
        tasks = [PeriodicTask(eng_b, p,
                              lambda i=i: log_b.append((eng_b.now, i)))
                 for i, p in enumerate(periods)]
        eng_b.run(until=horizon)

        eng_p = Engine()
        log_p = []

        def chain(i, period):
            def tick():
                log_p.append((eng_p.now, i))
                eng_p.schedule(period, tick)
            return tick

        for i, p in enumerate(periods):
            eng_p.schedule(p, chain(i, p))
        eng_p.run(until=horizon)

        assert log_b == log_p
        for t in tasks:
            t.stop()

    def test_phase_collision_merges_buckets(self):
        eng = Engine()
        log = []
        PeriodicTask(eng, 4.0, lambda: log.append("a"))  # fires 4, 8, ...
        PeriodicTask(eng, 4.0, lambda: log.append("b"),
                     first_delay=8.0)                    # fires 8, 12, ...
        eng.run(until=12.0)
        # at t=8 a's re-registration collides with b's initial bucket and
        # merges into it; b keeps priority (its event has the older seq,
        # exactly as per-task events would order it)
        assert log == ["a", "b", "a", "b", "a"]
        assert len(eng) == 1  # still a single merged heap entry

    def test_member_stopped_mid_firing_does_not_fire(self):
        eng = Engine()
        log = []
        tasks = {}

        def a_fn():
            log.append("a")
            tasks["b"].stop()

        tasks["a"] = PeriodicTask(eng, 2.0, a_fn)
        tasks["b"] = PeriodicTask(eng, 2.0, lambda: log.append("b"))
        eng.run(until=6.0)
        assert log == ["a", "a", "a"]

    def test_stopping_all_members_drops_heap_entry(self):
        eng = Engine()
        tasks = [PeriodicTask(eng, 7.0, lambda: None) for _ in range(3)]
        assert len(eng) == 1
        for t in tasks:
            t.stop()
        assert len(eng) == 0
        eng.run()
        assert eng.events_processed == 0
