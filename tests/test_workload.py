"""Tests for arrival processes, session laws and user agents."""

import numpy as np
import pytest

from repro.core.node import SessionOutcome
from repro.core.system import CoolstreamingSystem
from repro.workload.arrivals import (
    DiurnalProfile,
    FlashCrowd,
    PoissonArrivals,
    merge_arrivals,
)
from repro.workload.scenarios import (
    evening_broadcast,
    flash_crowd_storm,
    steady_audience,
)
from repro.workload.sessions import ProgramSchedule, SessionDurationModel
from repro.workload.users import UserAgent


class TestPoisson:
    def test_mean_count(self, rng):
        times = PoissonArrivals(2.0).sample(1000.0, rng)
        assert 1800 < times.size < 2200

    def test_sorted_within_horizon(self, rng):
        times = PoissonArrivals(1.0).sample(100.0, rng)
        assert (np.diff(times) >= 0).all()
        assert times.min() >= 0 and times.max() < 100.0

    def test_zero_rate(self, rng):
        assert PoissonArrivals(0.0).sample(100.0, rng).size == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0)

    def test_rate_at_constant(self):
        assert PoissonArrivals(3.0).rate_at(55.0) == 3.0


class TestDiurnal:
    def test_evening_peak_shape(self):
        profile = DiurnalProfile.evening_peak(peak_rate=10.0)
        h = 3600.0
        assert profile.rate_at(20.0 * h) == 10.0       # prime time
        assert profile.rate_at(4.0 * h) < 1.0          # night
        assert profile.rate_at(23.5 * h) < profile.rate_at(20.0 * h)

    def test_interpolation_between_anchors(self):
        profile = DiurnalProfile(anchors=((0.0, 0.0), (10.0, 10.0)))
        assert profile.rate_at(5.0) == 5.0

    def test_sampling_respects_profile(self, rng):
        profile = DiurnalProfile(anchors=((0.0, 0.0), (50.0, 0.0),
                                          (51.0, 10.0), (100.0, 10.0)))
        times = profile.sample(100.0, rng)
        early = (times < 50).sum()
        late = (times >= 50).sum()
        assert late > 10 * max(1, early)

    def test_unordered_anchors_rejected(self):
        with pytest.raises(ValueError):
            DiurnalProfile(anchors=((5.0, 1.0), (1.0, 1.0)))

    def test_single_anchor_rejected(self):
        with pytest.raises(ValueError):
            DiurnalProfile(anchors=((0.0, 1.0),))


class TestFlashCrowd:
    def test_phases(self):
        fc = FlashCrowd(start_s=100, ramp_s=50, hold_s=100, decay_s=50,
                        peak_rate=8.0, base_rate=1.0)
        assert fc.rate_at(50.0) == 1.0
        assert fc.rate_at(125.0) == pytest.approx(4.5)
        assert fc.rate_at(200.0) == 8.0
        assert 1.0 < fc.rate_at(300.0) < 8.0

    def test_decay_asymptote(self):
        fc = FlashCrowd(start_s=0, ramp_s=1, hold_s=1, decay_s=10,
                        peak_rate=5.0, base_rate=1.0)
        assert fc.rate_at(1000.0) == pytest.approx(1.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowd(start_s=0, ramp_s=-1, hold_s=1, decay_s=1, peak_rate=1)
        with pytest.raises(ValueError):
            FlashCrowd(start_s=0, ramp_s=1, hold_s=1, decay_s=1,
                       peak_rate=1.0, base_rate=2.0)

    def test_merge_arrivals(self):
        merged = merge_arrivals([np.array([3.0, 1.0]), np.array([2.0])])
        assert list(merged) == [1.0, 2.0, 3.0]

    def test_merge_empty(self):
        assert merge_arrivals([]).size == 0


class TestDurations:
    def test_minimum_enforced(self, rng):
        model = SessionDurationModel(min_duration_s=30.0)
        assert (model.sample(rng, 2000) >= 30.0).all()

    def test_heavy_tail_present(self, rng):
        model = SessionDurationModel()
        samples = model.sample(rng, 20000)
        # Pareto tail: p99 much larger than the median
        assert np.quantile(samples, 0.99) > 8 * np.median(samples)

    def test_tail_weight_zero_is_pure_lognormal(self, rng):
        model = SessionDurationModel(tail_weight=0.0, lognorm_median_s=100.0)
        samples = model.sample(rng, 20000)
        assert np.median(samples) == pytest.approx(100.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionDurationModel(tail_weight=1.5)
        with pytest.raises(ValueError):
            SessionDurationModel(lognorm_median_s=0.0)

    def test_mean_estimate_positive(self, rng):
        assert SessionDurationModel().mean_estimate(rng, 1000) > 0


class TestSchedule:
    def test_single_ending(self):
        sched = ProgramSchedule.single_ending(1000.0, 0.8)
        assert sched.events_in(0, 2000) == [(1000.0, 0.8)]
        assert sched.events_in(1001, 2000) == []

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            ProgramSchedule(endings=((5.0, 0.5), (2.0, 0.5)))

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            ProgramSchedule(endings=((1.0, 1.5),))


class TestUserAgents:
    def test_user_joins_and_departs_on_schedule(self, small_cfg):
        system = CoolstreamingSystem(small_cfg, seed=5)
        agent = UserAgent(system, user_id=0, arrival_time=10.0,
                          intended_duration_s=120.0, max_retries=3,
                          retry_backoff_s=5.0, silent_leave_prob=0.0)
        agent.schedule_arrival()
        system.run(until=300.0)
        assert agent.done
        assert agent.node.outcome is SessionOutcome.NORMAL
        assert agent.node.left_at == pytest.approx(130.0, abs=1.0)

    def test_failed_join_retries(self, small_cfg):
        # no servers: joins must time out and retry until exhausted
        system = CoolstreamingSystem(
            small_cfg.with_overrides(n_servers=0), seed=5
        )
        agent = UserAgent(system, user_id=0, arrival_time=0.0,
                          intended_duration_s=10_000.0, max_retries=2,
                          retry_backoff_s=2.0)
        agent.schedule_arrival()
        system.run(until=1000.0)
        assert agent.done
        assert agent.attempts == 3  # initial + 2 retries
        assert agent.retry_count == 2
        assert not agent.ever_played

    def test_program_ending_probability_one(self, small_cfg):
        system = CoolstreamingSystem(small_cfg, seed=5)
        agent = UserAgent(system, user_id=0, arrival_time=0.0,
                          intended_duration_s=10_000.0, max_retries=0,
                          retry_backoff_s=1.0)
        agent.schedule_arrival()
        system.run(until=100.0)
        agent.program_ended(leave_probability=1.0)
        system.run(until=120.0)
        assert agent.done
        assert agent.node.outcome is SessionOutcome.PROGRAM_END

    def test_population_builds_and_runs(self, small_cfg):
        scenario = steady_audience(rate_per_s=0.1, horizon_s=300.0,
                                   n_servers=2, cfg=small_cfg)
        system, pop = scenario.run(seed=3)
        assert system.engine.now == 300.0
        assert 0.0 <= pop.success_fraction() <= 1.0
        assert sum(pop.retry_histogram().values()) <= len(pop.users)

    def test_population_double_attach_rejected(self, small_cfg):
        scenario = steady_audience(rate_per_s=0.1, horizon_s=100.0,
                                   cfg=small_cfg)
        system, pop = scenario.build(seed=3)
        with pytest.raises(RuntimeError):
            pop.attach()


class TestScenarios:
    def test_evening_broadcast_scales_servers(self):
        scn = evening_broadcast(scale=10.0)
        assert scn.cfg.n_servers > evening_broadcast(scale=1.0).cfg.n_servers

    def test_evening_broadcast_has_program_end(self):
        scn = evening_broadcast(horizon_s=1000.0)
        assert scn.schedule.endings[0][0] == 750.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            evening_broadcast(scale=0.0)

    def test_flash_crowd_storm_builds(self):
        scn = flash_crowd_storm(horizon_s=100.0)
        assert scn.arrivals.peak_rate == 4.0
