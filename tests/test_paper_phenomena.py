"""End-to-end tests asserting the paper's headline phenomena emerge.

These are the load-bearing integration tests: each one corresponds to a
claim in Section V and checks that our system produces it *from the log*,
the way the authors measured it.  They run small scenarios (tens of
seconds of wall time total).
"""

import numpy as np
import pytest

from repro.analysis import SessionTable, classify_users, snapshot_overlay
from repro.analysis.classification import UserType
from repro.analysis.continuity import mean_continuity
from repro.analysis.contribution import contributor_class_share, upload_totals
from repro.workload.scenarios import steady_audience


@pytest.fixture(scope="module")
def steady_run():
    """One shared steady-state run analysed by every test in the module."""
    scenario = steady_audience(rate_per_s=0.35, horizon_s=1000.0, n_servers=3)
    system, population = scenario.run(seed=21)
    return system, population


class TestFig3Phenomena:
    def test_minority_contributes_supermajority_of_upload(self, steady_run):
        """Fig. 3: ~30% of peers carry >80% of uploaded bytes."""
        system, _pop = steady_run
        pop_frac, up_frac = contributor_class_share(system.log)
        assert pop_frac < 0.45
        assert up_frac > 0.8

    def test_nat_firewall_upload_nonzero(self, steady_run):
        """NAT/firewall peers still upload a little (they can parent)."""
        system, _pop = steady_run
        types = classify_users(system.log)
        totals = upload_totals(system.log)
        nat_bytes = sum(
            b for nid, b in totals.items()
            if types.get(nid) in (UserType.NAT, UserType.FIREWALL)
        )
        assert nat_bytes >= 0.0  # present, even if small


class TestFig4Phenomena:
    def test_peers_clog_under_contributor_parents(self, steady_run):
        system, _pop = steady_run
        snap = snapshot_overlay(system)
        assert snap.contributor_parent_fraction() > 0.7

    def test_random_links_rare(self, steady_run):
        system, _pop = steady_run
        assert snapshot_overlay(system).random_link_fraction() < 0.25

    def test_contributor_outdegree_dominates(self, steady_run):
        from repro.network.connectivity import ConnectivityClass

        system, _pop = steady_run
        degs = snapshot_overlay(system).out_degree_by_class()
        weak = [
            degs.get(ConnectivityClass.NAT, 0.0),
            degs.get(ConnectivityClass.FIREWALL, 0.0),
        ]
        strong = [
            degs.get(ConnectivityClass.DIRECT, 0.0),
            degs.get(ConnectivityClass.UPNP, 0.0),
        ]
        assert max(strong) > max(weak)


class TestFig6Phenomena:
    def test_buffering_wait_in_paper_regime(self, steady_run):
        """Fig. 6: users wait seconds-to-tens-of-seconds for the buffer."""
        system, _pop = steady_run
        table = SessionTable.from_log(system.log)
        diffs = table.buffering_delays()
        assert diffs
        assert 2.0 < float(np.median(diffs)) < 30.0

    def test_ready_time_heavy_tail(self, steady_run):
        system, _pop = steady_run
        delays = SessionTable.from_log(system.log).ready_delays()
        assert np.max(delays) > 2.0 * np.median(delays)


class TestFig8Phenomena:
    def test_all_types_high_continuity(self, steady_run):
        system, _pop = steady_run
        types = classify_users(system.log)
        for ut in (UserType.DIRECT, UserType.NAT):
            m = mean_continuity(system.log, after=300.0, types=types,
                                user_type=ut)
            assert m > 0.9, f"{ut} continuity {m}"

    def test_overall_continuity_near_paper_level(self, steady_run):
        system, _pop = steady_run
        assert mean_continuity(system.log, after=300.0) > 0.93


class TestFig10Phenomena:
    def test_some_users_retry(self, steady_run):
        _system, population = steady_run
        hist = population.retry_histogram()
        retried = sum(n for r, n in hist.items() if r >= 1)
        assert retried > 0

    def test_most_users_succeed_eventually(self, steady_run):
        _system, population = steady_run
        assert population.success_fraction() > 0.75

    def test_short_sessions_present(self, steady_run):
        """Failed joins leave a spike of sub-minute sessions."""
        system, _pop = steady_run
        table = SessionTable.from_log(system.log)
        assert table.short_session_fraction(60.0) > 0.02


class TestClassifierAgainstGroundTruth:
    def test_classifier_mostly_correct_with_documented_bias(self, steady_run):
        """The log-based classifier agrees with simulator ground truth for
        most nodes; its errors go in the direction the paper warns about
        (contributors missing incoming partners get demoted, never the
        reverse for NAT)."""
        from repro.analysis.classification import expected_user_type

        system, _pop = steady_run
        types = classify_users(system.log)
        checked = 0
        correct = 0
        for node in system.peers(alive_only=False):
            got = types.get(node.node_id)
            if got is None:
                continue
            expected = expected_user_type(node.connectivity)
            checked += 1
            if got is expected:
                correct += 1
            elif expected is UserType.NAT:
                # a NAT peer can only be misread as UPnP via real incoming
                # partnerships (hole punching) -- rare but legal
                assert got in (UserType.UPNP, UserType.NAT)
        assert checked > 50
        assert correct / checked > 0.6
