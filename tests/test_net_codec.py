"""The net wire format: frame round-trips and hostile-input rejection.

The decoder guards a real socket, so the failure cases matter as much as
the happy path: truncated buffers must wait for more bytes (not error),
while structurally bad frames -- wrong version, unknown type, oversized,
garbage JSON -- must raise :class:`CodecError` so the transport can kill
the connection.
"""

import json
import struct

import pytest

from repro.core.buffer import BufferMap
from repro.core.membership import MCacheEntry
from repro.core.pull import PullRequest
from repro.net.codec import (
    WIRE_VERSION,
    CodecError,
    FrameDecoder,
    MsgType,
    decode_bm,
    decode_entry,
    decode_pull_requests,
    encode_bm,
    encode_entry,
    encode_frame,
    encode_pull_requests,
)
from repro.network.connectivity import ConnectivityClass


def roundtrip(msg_type, payload, **decoder_kw):
    decoder = FrameDecoder(**decoder_kw)
    out = list(decoder.feed(encode_frame(msg_type, payload)))
    assert len(out) == 1
    return out[0]


class TestFrameRoundTrip:
    def test_simple_frame(self):
        got_type, got = roundtrip(MsgType.HELLO,
                                  {"node_id": 7, "host": "127.0.0.1",
                                   "port": 4242})
        assert got_type is MsgType.HELLO
        assert got == {"node_id": 7, "host": "127.0.0.1", "port": 4242}

    def test_every_message_type_round_trips(self):
        for msg_type in MsgType:
            got_type, got = roundtrip(msg_type, {"x": int(msg_type)})
            assert got_type is msg_type
            assert got == {"x": int(msg_type)}

    def test_multiple_frames_in_one_feed(self):
        data = (encode_frame(MsgType.GOSSIP, {"n": 1})
                + encode_frame(MsgType.BM_UPDATE, {"n": 2}))
        decoder = FrameDecoder()
        out = list(decoder.feed(data))
        assert [t for t, _ in out] == [MsgType.GOSSIP, MsgType.BM_UPDATE]
        assert [p["n"] for _, p in out] == [1, 2]

    def test_byte_at_a_time_reassembly(self):
        data = encode_frame(MsgType.BLOCKS,
                            {"substream": 1, "first": 10, "last": 12})
        decoder = FrameDecoder()
        out = []
        for i in range(len(data)):
            out.extend(decoder.feed(data[i:i + 1]))
        assert len(out) == 1
        assert out[0][1]["last"] == 12

    def test_unicode_payload(self):
        _, got = roundtrip(MsgType.LOG_REPORT, {"line": "café ⊕ 日本"})
        assert got["line"] == "café ⊕ 日本"


class TestTruncatedFrames:
    def test_partial_header_yields_nothing(self):
        decoder = FrameDecoder()
        assert list(decoder.feed(b"\x00\x00")) == []

    def test_partial_body_yields_nothing_then_completes(self):
        data = encode_frame(MsgType.PEERS_REQUEST, {})
        decoder = FrameDecoder()
        assert list(decoder.feed(data[:-3])) == []
        out = list(decoder.feed(data[-3:]))
        assert out == [(MsgType.PEERS_REQUEST, {})]

    def test_empty_feed_is_harmless(self):
        decoder = FrameDecoder()
        assert list(decoder.feed(b"")) == []


class TestGarbageRejection:
    def test_wrong_version(self):
        body = json.dumps({}).encode()
        frame = (struct.pack("!I", 2 + len(body))
                 + struct.pack("!BB", WIRE_VERSION + 1, int(MsgType.HELLO))
                 + body)
        with pytest.raises(CodecError, match="version"):
            list(FrameDecoder().feed(frame))

    def test_unknown_message_type(self):
        body = json.dumps({}).encode()
        frame = (struct.pack("!I", 2 + len(body))
                 + struct.pack("!BB", WIRE_VERSION, 250)
                 + body)
        with pytest.raises(CodecError, match="unknown message type"):
            list(FrameDecoder().feed(frame))

    def test_garbage_json_body(self):
        body = b"{not json!"
        frame = (struct.pack("!I", 2 + len(body))
                 + struct.pack("!BB", WIRE_VERSION, int(MsgType.HELLO))
                 + body)
        with pytest.raises(CodecError, match="malformed frame body"):
            list(FrameDecoder().feed(frame))

    def test_non_object_body(self):
        body = b"[1,2,3]"
        frame = (struct.pack("!I", 2 + len(body))
                 + struct.pack("!BB", WIRE_VERSION, int(MsgType.HELLO))
                 + body)
        with pytest.raises(CodecError, match="JSON object"):
            list(FrameDecoder().feed(frame))

    def test_oversized_declared_length(self):
        frame = struct.pack("!I", 1 << 21)
        with pytest.raises(CodecError, match="exceeds limit"):
            list(FrameDecoder(max_frame_bytes=1 << 20).feed(frame))

    def test_undersized_declared_length(self):
        frame = struct.pack("!I", 1) + b"\x01"
        with pytest.raises(CodecError, match="too short"):
            list(FrameDecoder().feed(frame))

    def test_encode_respects_frame_limit(self):
        with pytest.raises(CodecError, match="exceeds limit"):
            encode_frame(MsgType.GOSSIP, {"blob": "x" * 4096},
                         max_frame_bytes=256)


class TestFieldCodecs:
    def entry(self):
        return MCacheEntry(node_id=42,
                           connectivity=ConnectivityClass.DIRECT,
                           joined_at=12.5, last_seen=60.0)

    def test_entry_round_trip_with_address(self):
        obj = encode_entry(self.entry(), ("127.0.0.1", 9999))
        entry, address = decode_entry(obj)
        assert entry == self.entry()
        assert address == ("127.0.0.1", 9999)

    def test_entry_round_trip_without_address(self):
        entry, address = decode_entry(encode_entry(self.entry()))
        assert entry == self.entry()
        assert address is None

    def test_entry_rejects_malformed(self):
        with pytest.raises(CodecError):
            decode_entry("nope")
        with pytest.raises(CodecError):
            decode_entry({"node_id": 1})  # missing fields
        with pytest.raises(CodecError):
            decode_entry({"node_id": 1, "connectivity": 999,
                          "joined_at": 0.0, "last_seen": 0.0})

    def test_bm_round_trip(self):
        bm = BufferMap(heads=(5, -1, 9), subscriptions=(True, False, True))
        assert decode_bm(encode_bm(bm)) == bm

    def test_bm_rejects_malformed(self):
        with pytest.raises(CodecError):
            decode_bm({"heads": [1]})
        with pytest.raises(CodecError):
            decode_bm([1, 2, 3])  # odd length
        with pytest.raises(CodecError):
            decode_bm([-2, 1])    # head below -1

    def test_pull_requests_round_trip(self):
        reqs = [PullRequest(substream=0, first=3, last=5),
                PullRequest(substream=2, first=0, last=0)]
        assert decode_pull_requests(encode_pull_requests(reqs)) == reqs

    def test_pull_requests_reject_malformed(self):
        with pytest.raises(CodecError):
            decode_pull_requests("nope")
        with pytest.raises(CodecError):
            decode_pull_requests([[0, 5, 3]])  # last < first
        with pytest.raises(CodecError):
            decode_pull_requests([["a", "b", "c"]])
