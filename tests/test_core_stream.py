"""Unit tests for the push data plane and playback accounting."""

import pytest

from repro.core.stream import PlaybackState, UploadScheduler


def collect_pushes():
    pushed = []

    def push(conn, first, last):
        pushed.append((conn.child_id, conn.substream, first, last))

    return pushed, push


# a cache window so large everything is always available
no_window = 1 << 30


class TestSubscriptions:
    def test_subscribe_creates_connection(self):
        sched = UploadScheduler(10.0, 1.0, 1.0)
        conn = sched.subscribe(7, 2, from_index=5, now=0.0)
        assert conn.child_id == 7
        assert conn.substream == 2
        assert conn.next_index == 5
        assert sched.substream_degree == 1

    def test_resubscribe_repoints(self):
        sched = UploadScheduler(10.0, 1.0, 1.0)
        sched.subscribe(7, 2, 5, now=0.0)
        sched.subscribe(7, 2, 9, now=1.0)
        assert sched.substream_degree == 1
        assert sched.connections()[0].next_index == 9

    def test_unsubscribe(self):
        sched = UploadScheduler(10.0, 1.0, 1.0)
        sched.subscribe(7, 2, 5, now=0.0)
        assert sched.unsubscribe(7, 2) is not None
        assert sched.unsubscribe(7, 2) is None
        assert sched.substream_degree == 0

    def test_drop_child_removes_all_substreams(self):
        sched = UploadScheduler(10.0, 1.0, 1.0)
        for sub in range(4):
            sched.subscribe(7, sub, 0, now=0.0)
        sched.subscribe(8, 0, 0, now=0.0)
        dropped = sched.drop_child(7)
        assert len(dropped) == 4
        assert sched.children() == {8}

    def test_degree_for_substream(self):
        sched = UploadScheduler(10.0, 1.0, 1.0)
        sched.subscribe(1, 0, 0, now=0.0)
        sched.subscribe(2, 0, 0, now=0.0)
        sched.subscribe(3, 1, 0, now=0.0)
        assert sched.degree_for_substream(0) == 2
        assert sched.degree_for_substream(1) == 1

    def test_negative_from_index_clamped(self):
        sched = UploadScheduler(10.0, 1.0, 1.0)
        conn = sched.subscribe(1, 0, -5, now=0.0)
        assert conn.next_index == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            UploadScheduler(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            UploadScheduler(1.0, 0.0, 1.0)


class TestDelivery:
    def test_single_caught_up_child_tracks_live_rate(self):
        sched = UploadScheduler(10.0, 1.0, 1.0)
        sched.subscribe(1, 0, 1, now=0.0)
        pushed, push = collect_pushes()
        total_bits = 0.0
        for head in range(1, 11):
            total_bits += sched.deliver(1.0, [head], no_window, push)
        delivered = sum(last - first + 1 for _c, _s, first, last in pushed)
        assert delivered == 10
        assert total_bits == 10.0

    def test_catching_up_child_uses_surplus(self):
        # child is 20 blocks behind; parent has 5 slots -> catch-up at 5/s
        sched = UploadScheduler(5.0, 1.0, 1.0)
        sched.subscribe(1, 0, 1, now=0.0)
        pushed, push = collect_pushes()
        sched.deliver(1.0, [20], no_window, push)
        delivered = sum(last - first + 1 for _c, _s, first, last in pushed)
        assert delivered == 5

    def test_catchup_capped_by_demand_factor(self):
        from repro.core.stream import CATCHUP_DEMAND_FACTOR
        sched = UploadScheduler(1000.0, 1.0, 1.0)
        sched.subscribe(1, 0, 1, now=0.0)
        pushed, push = collect_pushes()
        sched.deliver(1.0, [1000], no_window, push)
        delivered = sum(last - first + 1 for _c, _s, first, last in pushed)
        assert delivered == int(CATCHUP_DEMAND_FACTOR)

    def test_oversubscribed_parent_degrades_everyone(self):
        # Eq. 5 scenario: 2 slots, 4 caught-up children -> 0.5 each
        sched = UploadScheduler(2.0, 1.0, 1.0)
        for c in range(4):
            sched.subscribe(c, 0, 1, now=0.0)
        pushed, push = collect_pushes()
        for head in range(1, 21):
            sched.deliver(1.0, [head], no_window, push)
        per_child = {c: 0 for c in range(4)}
        for c, _s, first, last in pushed:
            per_child[c] += last - first + 1
        for c in range(4):
            assert per_child[c] == pytest.approx(10, abs=2)

    def test_no_delivery_beyond_parent_head(self):
        sched = UploadScheduler(100.0, 1.0, 1.0)
        sched.subscribe(1, 0, 1, now=0.0)
        pushed, push = collect_pushes()
        sched.deliver(10.0, [3], no_window, push)
        assert pushed == [(1, 0, 1, 3)]

    def test_no_delivery_when_parent_empty(self):
        sched = UploadScheduler(100.0, 1.0, 1.0)
        sched.subscribe(1, 0, 0, now=0.0)
        pushed, push = collect_pushes()
        bits = sched.deliver(1.0, [-1], no_window, push)
        assert bits == 0.0
        assert pushed == []

    def test_cache_eviction_fast_forwards_child(self):
        sched = UploadScheduler(100.0, 1.0, 1.0)
        sched.subscribe(1, 0, 0, now=0.0)
        pushed, push = collect_pushes()
        # window of 11 puts the floor at 50 for head 60: blocks 0..49 are gone
        sched.deliver(1.0, [60], 11, push)
        assert pushed[0][2] == 50  # first delivered block is the floor

    def test_credit_carries_fractional_blocks(self):
        # rate 0.5 block/s: one block every 2 seconds
        sched = UploadScheduler(0.5, 1.0, 1.0)
        sched.subscribe(1, 0, 1, now=0.0)
        pushed, push = collect_pushes()
        sched.deliver(1.0, [100], no_window, push)
        n1 = len(pushed)
        sched.deliver(1.0, [100], no_window, push)
        delivered = sum(last - first + 1 for _c, _s, first, last in pushed)
        assert delivered == 1

    def test_credit_does_not_bank_during_stall(self):
        sched = UploadScheduler(10.0, 1.0, 1.0)
        sched.subscribe(1, 0, 1, now=0.0)
        pushed, push = collect_pushes()
        # parent stuck at head 0 for a long time: unused upload capacity
        # must NOT accumulate as deliverable credit
        for _ in range(50):
            sched.deliver(1.0, [0], no_window, push)
        # parent jumps 30 blocks ahead: the burst is bounded by one
        # quantum of the (re-computed catch-up) rate plus the small credit
        # carry -- not by the 50 stalled quanta
        sched.deliver(1.0, [30], no_window, push)
        delivered = sum(last - first + 1 for _c, _s, first, last in pushed)
        assert delivered <= 12  # capacity*dt + credit carry
        assert delivered < 30   # the stall did not bank bandwidth

    def test_bits_uploaded_accounting(self):
        sched = UploadScheduler(10.0, 1.0, 2.0)  # 2 bits per block
        sched.subscribe(1, 0, 1, now=0.0)
        _pushed, push = collect_pushes()
        sched.deliver(1.0, [5], no_window, push)
        assert sched.bits_uploaded > 0
        assert sched.bits_uploaded % 2.0 == 0.0


class TestPlayback:
    def test_not_playing_accrues_nothing(self):
        pb = PlaybackState(2, start_index=0)
        assert pb.advance(5.0, [10, 10]) == (0, 0)
        assert pb.continuity_index == 1.0

    def test_perfect_stream(self):
        pb = PlaybackState(2, start_index=0)
        pb.start(now=0.0)
        due, missed = pb.advance(10.0, [100, 100])
        assert due == 20  # 10 s * 2 sub-streams
        assert missed == 0
        assert pb.continuity_index == 1.0

    def test_one_lagging_substream(self):
        pb = PlaybackState(2, start_index=0)
        pb.start(now=0.0)
        # sub 0 fully received, sub 1 has nothing
        due, missed = pb.advance(10.0, [100, -1])
        assert due == 20
        assert missed == 10
        assert pb.continuity_index == 0.5

    def test_partial_lag(self):
        pb = PlaybackState(1, start_index=0)
        pb.start(0.0)
        due, missed = pb.advance(10.0, [4])
        # blocks 0..9 due; 0..4 received -> 5 missed
        assert (due, missed) == (10, 5)

    def test_fractional_advance_accumulates(self):
        pb = PlaybackState(1, start_index=0)
        pb.start(0.0)
        total_due = 0
        for _ in range(10):
            due, _ = pb.advance(0.25, [100])
            total_due += due
        assert total_due == 2  # 2.5 s of playout -> 2 whole blocks due

    def test_window_continuity_resets(self):
        pb = PlaybackState(1, start_index=0)
        pb.start(0.0)
        pb.advance(10.0, [4])
        assert pb.window_continuity() == pytest.approx(0.5)
        pb.advance(10.0, [100])
        assert pb.window_continuity() == pytest.approx(1.0)

    def test_window_continuity_none_when_nothing_due(self):
        pb = PlaybackState(1, start_index=0)
        assert pb.window_continuity() is None

    def test_watchdog_independent_of_report_window(self):
        pb = PlaybackState(1, start_index=0)
        pb.start(0.0)
        pb.advance(10.0, [4])
        assert pb.window_continuity() == pytest.approx(0.5)
        # draining the report window must not blind the watchdog
        assert pb.watchdog_continuity() == pytest.approx(0.5)

    def test_holes_counted_when_passed(self):
        pb = PlaybackState(1, start_index=0)
        pb.start(0.0)
        pb.add_hole(0, 3, 5)
        due, missed = pb.advance(10.0, [100])
        assert missed == 3

    def test_hole_straddling_window_boundary(self):
        pb = PlaybackState(1, start_index=0)
        pb.start(0.0)
        pb.add_hole(0, 4, 12)
        _d, m1 = pb.advance(8.0, [100])   # passes indices 0..7 -> holes 4..7
        assert m1 == 4
        _d, m2 = pb.advance(8.0, [100])   # passes 8..15 -> holes 8..12
        assert m2 == 5

    def test_past_holes_ignored(self):
        pb = PlaybackState(1, start_index=0)
        pb.start(0.0)
        pb.advance(10.0, [100])
        pb.add_hole(0, 2, 4)  # already behind the pointer
        _d, missed = pb.advance(10.0, [100])
        assert missed == 0

    def test_buffered_seconds(self):
        pb = PlaybackState(2, start_index=10)
        assert pb.buffered_seconds([19, 15]) == 6.0  # min head governs
        pb.start(0.0)
        pb.advance(3.0, [19, 15])
        assert pb.buffered_seconds([19, 15]) == 3.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            PlaybackState(2, start_index=-1)
