"""Tests for the join-funnel analysis and figure exports."""

import json

import pytest

from repro.analysis.funnel import JoinFunnel, funnel_by_attempt, join_funnel
from repro.experiments.render import FigureResult
from repro.telemetry.reports import ActivityEvent, ActivityReport, LeaveReason
from repro.telemetry.server import LogServer


def session(server, sid, events, attempt=1):
    for event, t in events:
        server.receive_report(t, ActivityReport(
            time=t, node_id=sid, user_id=sid, session_id=sid,
            event=event, attempt=attempt,
            reason=LeaveReason.NORMAL if event is ActivityEvent.LEAVE else None,
        ))


class TestJoinFunnel:
    def test_monotonicity_enforced(self):
        with pytest.raises(ValueError):
            JoinFunnel(joined=1, subscribed=2, ready=0, completed=0)

    def test_rates(self):
        f = JoinFunnel(joined=10, subscribed=8, ready=4, completed=2)
        assert f.subscription_rate == 0.8
        assert f.ready_rate == 0.4
        assert f.buffering_survival == 0.5

    def test_empty_funnel_nan_rates(self):
        import math
        f = JoinFunnel(0, 0, 0, 0)
        assert math.isnan(f.ready_rate)

    def test_rows_table(self):
        f = JoinFunnel(joined=4, subscribed=2, ready=1, completed=1)
        rows = f.rows()
        assert rows[0] == ("join", 4, "100.0%")
        assert rows[2] == ("player-ready", 1, "25.0%")

    def test_from_log(self):
        server = LogServer()
        # full normal session
        session(server, 1, [
            (ActivityEvent.JOIN, 0.0),
            (ActivityEvent.START_SUBSCRIPTION, 2.0),
            (ActivityEvent.PLAYER_READY, 10.0),
            (ActivityEvent.LEAVE, 100.0),
        ])
        # stalled in buffering
        session(server, 2, [
            (ActivityEvent.JOIN, 0.0),
            (ActivityEvent.START_SUBSCRIPTION, 2.0),
            (ActivityEvent.LEAVE, 40.0),
        ])
        # never subscribed
        session(server, 3, [(ActivityEvent.JOIN, 0.0)])
        f = join_funnel(server)
        assert (f.joined, f.subscribed, f.ready, f.completed) == (3, 2, 1, 1)

    def test_by_attempt(self):
        server = LogServer()
        session(server, 1, [(ActivityEvent.JOIN, 0.0)], attempt=1)
        session(server, 2, [
            (ActivityEvent.JOIN, 10.0),
            (ActivityEvent.START_SUBSCRIPTION, 12.0),
            (ActivityEvent.PLAYER_READY, 20.0),
        ], attempt=2)
        funnels = funnel_by_attempt(server)
        assert funnels[1].ready == 0
        assert funnels[2].ready == 1

    def test_real_run_funnel_sane(self, populated_system):
        f = join_funnel(populated_system.log)
        assert f.joined >= 15
        assert 0.5 <= f.ready_rate <= 1.0
        assert f.buffering_survival >= f.ready_rate


class TestFigureExports:
    def make(self):
        fr = FigureResult("Fig. T", "Test figure")
        fr.metrics["alpha"] = 1.5
        fr.metrics["beta"] = 0.25
        fr.note("a note")
        return fr

    def test_to_dict_schema(self):
        d = self.make().to_dict()
        assert d["figure_id"] == "Fig. T"
        assert d["metrics"]["alpha"] == 1.5
        assert d["notes"] == ["a note"]

    def test_to_json_roundtrip(self):
        back = json.loads(self.make().to_json())
        assert back["metrics"]["beta"] == 0.25

    def test_metrics_csv(self):
        csv = self.make().metrics_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "metric,value"
        assert "alpha,1.5" in lines
