"""Engine-level behaviour of repro.check: suppressions, output, exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check import all_rules, check_paths, check_source
from repro.check.cli import main as check_main
from repro.check.engine import CheckError, parse_suppressions
from repro.experiments.cli import main as repro_main

VIRTUAL = "src/repro/engine_under_test.py"

VIOLATING = "import random\n\ndef f():\n    return random.random()\n"


# --- suppression parsing --------------------------------------------------

def test_noqa_specific_rule_suppresses_only_that_rule():
    src = ("import random, time\n"
           "def f():\n"
           "    a = random.random()  # repro: noqa[DET001] justified\n"
           "    b = time.time()  # repro: noqa[DET001] wrong rule id\n"
           "    return a, b\n")
    findings = check_source(src, path=VIRTUAL)
    assert [f.rule for f in findings] == ["DET002"]


def test_bare_noqa_suppresses_every_rule():
    src = ("import random, time\n"
           "def f():\n"
           "    return random.random() + time.time()  # repro: noqa both ok\n")
    assert check_source(src, path=VIRTUAL) == []


def test_noqa_comma_list():
    src = ("import random, time\n"
           "def f():\n"
           "    return random.random() + time.time()"
           "  # repro: noqa[DET001, DET002] fixture\n")
    assert check_source(src, path=VIRTUAL) == []


def test_parse_suppressions_shapes():
    sup = parse_suppressions(
        "x = 1  # repro: noqa\n"
        "y = 2  # repro: noqa[DET001]\n"
        "z = 3  # plain comment\n")
    assert sup[1] is None
    assert sup[2] == frozenset({"DET001"})
    assert 3 not in sup


# --- rule selection -------------------------------------------------------

def test_select_and_ignore(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text("import random, time\n"
                 "def g():\n"
                 "    return random.random() + time.time()\n")
    all_findings = check_paths([str(f)])
    assert sorted(x.rule for x in all_findings.findings) == \
        ["DET001", "DET002"]
    only = check_paths([str(f)], select=["DET001"])
    assert [x.rule for x in only.findings] == ["DET001"]
    without = check_paths([str(f)], ignore=["det001"])
    assert [x.rule for x in without.findings] == ["DET002"]
    with pytest.raises(CheckError):
        check_paths([str(f)], select=["NOPE999"])


# --- CLI: formats + exit codes --------------------------------------------

def _write(tmp_path: Path, name: str, body: str) -> str:
    p = tmp_path / name
    p.write_text(body, encoding="utf-8")
    return str(p)


def test_cli_exit_0_on_clean_tree(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", "def f():\n    return 1\n")
    assert check_main([path]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_exit_1_with_findings_text(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", VIOLATING)
    assert check_main([path]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "dirty.py:4:" in out


def test_cli_exit_2_on_bad_path(capsys):
    assert check_main(["definitely/not/a/path.py"]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_exit_2_on_syntax_error(tmp_path, capsys):
    path = _write(tmp_path, "broken.py", "def f(:\n")
    assert check_main([path]) == 2
    assert "cannot parse" in capsys.readouterr().err


def test_cli_exit_2_on_unknown_rule(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", "x = 1\n")
    assert check_main([path, "--select", "NOPE"]) == 2


def test_cli_json_schema(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", VIOLATING)
    assert check_main([path, "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 2
    assert doc["files_checked"] == 1
    assert doc["counts"] == {"DET001": 1}
    assert doc["errors"] == []
    assert doc["cache"] == {"hits": 0, "misses": 0}
    (finding,) = doc["findings"]
    assert set(finding) == {"rule", "message", "path", "line", "col",
                            "severity"}
    assert finding["rule"] == "DET001"
    assert finding["severity"] == "error"
    assert finding["line"] == 4


def test_cli_json_clean(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", "x = 1\n")
    assert check_main([path, "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["findings"] == [] and doc["counts"] == {}


def test_cli_list_rules(capsys):
    assert check_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("DET001", "DET002", "DET003", "FLT001", "CFG001",
                 "ASY001", "ASY002", "ASY003", "SCH001", "SCH002",
                 "OBS001", "UNIT001"):
        assert rule in out


def test_registry_is_complete_and_sorted():
    ids = [r.id for r in all_rules()]
    assert ids == sorted(ids)
    assert set(ids) >= {"DET001", "DET002", "DET003", "FLT001", "CFG001",
                        "ASY001", "ASY002", "ASY003", "SCH001", "SCH002",
                        "OBS001", "UNIT001"}
    assert len(ids) >= 11  # acceptance criterion: --list-rules >= 11 ids


# --- python -m repro check dispatch ---------------------------------------

def test_repro_cli_dispatches_check(tmp_path, capsys):
    dirty = _write(tmp_path, "dirty.py", VIOLATING)
    assert repro_main(["check", dirty]) == 1
    assert "DET001" in capsys.readouterr().out
    clean = _write(tmp_path, "clean.py", "x = 1\n")
    assert repro_main(["check", clean]) == 0


def test_repro_cli_lists_check():
    # 'check' advertised next to campaign/parity in `python -m repro list`
    import io
    from contextlib import redirect_stdout

    buf = io.StringIO()
    with redirect_stdout(buf):
        assert repro_main(["list"]) == 0
    assert "check" in buf.getvalue().splitlines()
