"""End-to-end runs of the socket backend, plus registry and exit codes.

These deploy a real (localhost) Coolstreaming network: a coordinator
process-internal to the backend, dedicated servers, and user peers
exchanging wire frames over TCP.  Wall time is bounded by running tiny
audiences at a high virtual-time scale.
"""

import socket

import pytest

from repro.core.config import SystemConfig
from repro.core.node import LeaveReason
from repro.net.backend import NetBackend
from repro.net.config import NetConfig
from repro.runtime.backends import (
    BackendStartupError,
    DetailedBackend,
    FluidBackend,
    available_engines,
    resolve_backend,
)
from repro.runtime.driver import sample_workload
from repro.workload.scenarios import uniform_ramp


def tiny_scenario(n_users=14, horizon_s=180.0):
    cfg = SystemConfig().with_overrides(status_report_period_s=30.0)
    return uniform_ramp(n_users=n_users, horizon_s=horizon_s,
                        n_servers=2, cfg=cfg)


def net_backend(scenario, seed=0, **net_kw):
    """A NetBackend with the scenario's workload staged (fast clock)."""
    net_kw.setdefault("time_scale", 40.0)
    backend = NetBackend(scenario, seed=seed, net=NetConfig(**net_kw))
    workload = sample_workload(scenario, seed)
    backend.apply_workload(workload.times, workload.durations)
    for time_s, prob in workload.endings:
        backend.add_program_ending(time_s, prob)
    return backend


class TestNetEndToEnd:
    def test_sixteen_node_deployment(self):
        scenario = tiny_scenario(n_users=14)  # + 2 servers = 16 nodes
        backend = net_backend(scenario, seed=0)
        try:
            backend.run(scenario.horizon_s)
        finally:
            backend.close()

        # the deployment-side ground truth
        metrics = backend.snapshot_metrics()
        assert metrics["sessions_spawned"] >= 14
        assert metrics["net.messages_sent"] > 0
        assert metrics["net.frames_rejected"] == 0

        # the coordinator's log is non-empty and feeds the existing
        # analysis folds: session + continuity figure reconstruction
        assert len(backend.log) > 0
        from repro.analysis.streaming import (
            ConcurrentUsersFold,
            ContinuitySamplesFold,
            SessionTableFold,
            fold_log,
        )

        table, cont, (grid, counts) = fold_log(
            backend.log, SessionTableFold(), ContinuitySamplesFold(),
            ConcurrentUsersFold())
        sessions = table._sessions
        assert len(sessions) >= 14
        assert all(s.join_time is not None for s in sessions.values())
        assert any(s.ready_time is not None for s in sessions.values())
        assert len(cont) > 0
        assert all(0.0 <= c <= 1.0 for _, _, c in cont)
        assert counts.max() >= 10

    def test_kill_one_peer_partners_recover(self):
        scenario = tiny_scenario(n_users=10)
        backend = net_backend(scenario, seed=0)
        killed = []

        def kill_one(system):
            candidates = [p for p in system.peers() if p.partners.ids()]
            if candidates:
                victim = max(candidates, key=lambda p: len(p.partners.ids()))
                killed.append((victim.node_id, set(victim.partners.ids())))
                victim.leave(LeaveReason.FAILURE, silent=True)

        backend.at(90.0, kill_one)
        try:
            backend.run(scenario.horizon_s)
        finally:
            backend.close()

        assert killed, "no partnered peer existed at kill time"
        victim_id, victim_partners = killed[0]
        system = backend.system

        # the victim is gone and every surviving ex-partner noticed the
        # dead TCP connection: nobody still lists it as a partner
        assert not system.get_node(victim_id).alive
        for node in system._nodes.values():
            if node.node_id != victim_id and node.alive:
                assert victim_id not in node.partners.ids()

        # the run completed and the audience recovered (the victim's user
        # retried, so the deployment spawned more sessions than users)
        metrics = backend.snapshot_metrics()
        assert metrics["sessions_spawned"] > 10
        assert metrics["concurrent_users"] >= 9


class TestBackendRegistry:
    def test_net_engine_registered(self):
        assert set(available_engines()) >= {"detailed", "fast", "net"}

    def test_resolution(self):
        assert resolve_backend("detailed") is DetailedBackend
        assert resolve_backend("fast") is FluidBackend
        assert resolve_backend("net") is NetBackend  # lazy spec resolved

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_backend("warp")

    def test_campaign_spec_accepts_net(self):
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec.from_dict(
            {"name": "x",
             "entries": [{"experiment": "fig3", "engine": "net"}]},
            code_version=None)
        assert spec.runs[0].overrides == {"engine": "net"}


class TestStartupFailureExitCodes:
    def test_port_in_use_raises_startup_error(self):
        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        busy_port = blocker.getsockname()[1]
        try:
            scenario = tiny_scenario(n_users=2, horizon_s=60.0)
            backend = net_backend(scenario, seed=0, port=busy_port)
            with pytest.raises(BackendStartupError, match="cannot bind"):
                backend.run(scenario.horizon_s)
            backend.close()
        finally:
            blocker.close()

    def test_parity_cli_maps_startup_error_to_exit_1(self, monkeypatch, capsys):
        import repro.runtime.parity as parity

        def boom(*args, **kwargs):
            raise BackendStartupError("port 9 already in use")

        monkeypatch.setattr(parity, "run_parity_suite", boom)
        assert parity.main(["--scenario", "steady_audience"]) == 1
        assert "backend startup" in capsys.readouterr().err

    def test_run_cli_maps_startup_error_to_exit_1(self, monkeypatch, capsys):
        from repro.experiments import cli

        def boom(seed, jobs=1, engine=None):
            raise BackendStartupError("coordinator unreachable")

        monkeypatch.setitem(cli.EXPERIMENTS, "fig3", boom)
        assert cli.main(["fig3"]) == 1
        assert "backend startup" in capsys.readouterr().err

    def test_parity_cli_rejects_unknown_engines(self, capsys):
        from repro.runtime.parity import main as parity_main

        with pytest.raises(SystemExit) as exc:
            parity_main(["--engines", "detailed,warp"])
        assert exc.value.code == 2

    def test_parity_cli_rejects_single_engine(self, capsys):
        from repro.runtime.parity import main as parity_main

        with pytest.raises(SystemExit) as exc:
            parity_main(["--engines", "detailed"])
        assert exc.value.code == 2

    def test_run_cli_rejects_unknown_engine(self, capsys):
        from repro.experiments.cli import main as repro_main

        with pytest.raises(SystemExit) as exc:
            repro_main(["fig3", "--engine", "warp"])
        assert exc.value.code == 2
