"""Unit and property tests for the max-min fair-share allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fairshare import (
    _SMALL_N,
    _waterfill_np,
    _waterfill_py,
    FairShareAllocator,
    waterfill,
    waterfill_rates,
)


class TestWaterfill:
    def test_empty_demands(self):
        assert waterfill(10.0, []).size == 0

    def test_ample_capacity_satisfies_all(self):
        alloc = waterfill(100.0, [10, 20, 30])
        assert np.allclose(alloc, [10, 20, 30])

    def test_equal_split_when_equal_demands_exceed_capacity(self):
        alloc = waterfill(30.0, [100, 100, 100])
        assert np.allclose(alloc, [10, 10, 10])

    def test_small_demand_protected(self):
        # max-min: the 1-unit demand is fully served before big demands split
        alloc = waterfill(10.0, [1.0, 100.0, 100.0])
        assert np.isclose(alloc[0], 1.0)
        assert np.isclose(alloc[1], 4.5)
        assert np.isclose(alloc[2], 4.5)

    def test_eq5_special_case(self):
        # Eq. (5): D_p children exactly provisioned, one more joins ->
        # everyone drops to D_p/(D_p+1) of nominal
        d_p = 4
        nominal = 1.0
        alloc = waterfill(d_p * nominal, [np.inf] * (d_p + 1))
        assert np.allclose(alloc, d_p / (d_p + 1) * nominal)

    def test_inf_demands_split_capacity(self):
        alloc = waterfill(9.0, [np.inf, np.inf, np.inf])
        assert np.allclose(alloc, 3.0)

    def test_zero_capacity(self):
        alloc = waterfill(0.0, [5, 5])
        assert np.allclose(alloc, 0.0)

    def test_zero_demand_gets_zero(self):
        alloc = waterfill(10.0, [0.0, 5.0])
        assert alloc[0] == 0.0
        assert np.isclose(alloc[1], 5.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            waterfill(-1.0, [1.0])

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            waterfill(1.0, [-1.0])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            waterfill(1.0, np.ones((2, 2)))

    def test_three_tier_progressive_fill(self):
        alloc = waterfill(12.0, [2.0, 4.0, 100.0])
        # level: 2 satisfied, 4 satisfied, rest (6) to the big one
        assert np.allclose(alloc, [2.0, 4.0, 6.0])

    @given(
        capacity=st.floats(min_value=0.0, max_value=1e6),
        demands=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=40
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_feasible_and_work_conserving(self, capacity, demands):
        alloc = waterfill(capacity, demands)
        d = np.asarray(demands)
        # never exceed individual demand
        assert (alloc <= d + 1e-6).all()
        assert (alloc >= -1e-12).all()
        # work conserving: total = min(capacity, total demand)
        assert np.isclose(
            alloc.sum(), min(capacity, float(d.sum())), rtol=1e-6, atol=1e-6
        )

    @given(
        capacity=st.floats(min_value=0.1, max_value=1e4),
        demands=st.lists(
            st.floats(min_value=0.01, max_value=1e4), min_size=2, max_size=20
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_max_min_fairness(self, capacity, demands):
        """No unsatisfied connection gets less than any other connection's
        allocation (the defining property of max-min fairness)."""
        alloc = waterfill(capacity, demands)
        d = np.asarray(demands)
        unsat = alloc < d - 1e-9
        if unsat.any():
            floor = alloc[unsat].min()
            assert (alloc <= floor + 1e-6).all()


class TestAllocator:
    def test_allocation_unknown_key_is_zero(self):
        assert FairShareAllocator(10.0).allocation("nope") == 0.0

    def test_single_connection_gets_min_of_demand_and_capacity(self):
        alloc = FairShareAllocator(10.0)
        alloc.set_demand("a", 4.0)
        assert alloc.allocation("a") == 4.0
        alloc.set_demand("b", 100.0)
        assert alloc.allocation("b") == 6.0

    def test_remove_frees_capacity(self):
        alloc = FairShareAllocator(10.0)
        alloc.set_demand("a", 100.0)
        alloc.set_demand("b", 100.0)
        assert alloc.allocation("a") == 5.0
        alloc.remove("b")
        assert alloc.allocation("a") == 10.0

    def test_remove_missing_is_noop(self):
        FairShareAllocator(1.0).remove("ghost")

    def test_update_demand_recomputes(self):
        alloc = FairShareAllocator(10.0)
        alloc.set_demand("a", 100.0)
        alloc.set_demand("b", 2.0)
        assert np.isclose(alloc.allocation("a"), 8.0)
        alloc.set_demand("b", 100.0)
        assert np.isclose(alloc.allocation("a"), 5.0)

    def test_allocations_snapshot(self):
        alloc = FairShareAllocator(6.0)
        alloc.set_demand("a", 100.0)
        alloc.set_demand("b", 100.0)
        snap = alloc.allocations()
        assert set(snap) == {"a", "b"}
        assert np.isclose(sum(snap.values()), 6.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            FairShareAllocator(1.0).set_demand("a", -1.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FairShareAllocator(-5.0)

    def test_n_connections(self):
        alloc = FairShareAllocator(1.0)
        alloc.set_demand("a", 1.0)
        alloc.set_demand("b", 1.0)
        assert alloc.n_connections == 2


class TestWaterfillFastPathEquivalence:
    """The small-n pure-Python path must be bit-identical to the numpy
    reference path -- it is substituted silently under ``_SMALL_N``."""

    def test_zero_capacity(self):
        assert _waterfill_py(0.0, [1.0, 2.0, 3.0]) == [0.0, 0.0, 0.0]
        assert _waterfill_np(0.0, np.array([1.0, 2.0, 3.0])).tolist() == \
            [0.0, 0.0, 0.0]

    def test_single_demand(self):
        for cap, d in [(10.0, 4.0), (3.0, 4.0), (0.0, 4.0), (5.0, 0.0)]:
            py = _waterfill_py(cap, [d])
            ref = _waterfill_np(cap, np.array([d])).tolist()
            assert py == ref

    def test_all_equal_demands(self):
        for cap in (0.0, 5.0, 9.0, 100.0):
            demands = [3.0] * 7
            py = _waterfill_py(cap, demands)
            ref = _waterfill_np(cap, np.array(demands)).tolist()
            assert py == ref  # bitwise, incl. the ulp tie-assignment

    def test_infinite_demands(self):
        demands = [float("inf"), 2.0, float("inf")]
        py = _waterfill_py(9.0, demands)
        ref = _waterfill_np(9.0, np.array(demands)).tolist()
        assert py == ref

    def test_empty_demands(self):
        assert _waterfill_py(5.0, []) == []

    def test_randomized_seeded_vectors_bitwise_equal(self):
        rng = np.random.default_rng(0)
        for _ in range(400):
            n = int(rng.integers(1, _SMALL_N + 1))
            scale = float(rng.choice([1.0, 100.0, 1e4]))
            demands = (rng.random(n) * scale).tolist()
            mode = rng.random()
            if mode < 0.2:
                demands = [demands[0]] * n  # full tie group
            elif mode < 0.4:
                # partial ties: duplicate a random prefix value
                demands[: n // 2 + 1] = [demands[0]] * (n // 2 + 1)
            if rng.random() < 0.2:
                demands[int(rng.integers(0, n))] = 0.0
            capacity = float(rng.random() * scale * n * 0.7)
            ref = _waterfill_np(capacity, np.asarray(demands)).tolist()
            assert _waterfill_py(capacity, demands) == ref

    @given(
        capacity=st.floats(0.0, 1e6, allow_nan=False),
        demands=st.lists(st.floats(0.0, 1e5, allow_nan=False),
                         min_size=1, max_size=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_bitwise_equal_to_numpy(self, capacity, demands):
        ref = _waterfill_np(capacity, np.asarray(demands, dtype=float))
        assert _waterfill_py(capacity, demands) == ref.tolist()

    @given(
        capacity=st.floats(0.0, 100.0, allow_nan=False),
        demands=st.lists(st.sampled_from([0.0, 1.0, 1.5, 2.0, 7.25]),
                         min_size=2, max_size=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_tie_heavy_patterns_bitwise_equal(self, capacity, demands):
        """Discrete demand values force ties, exercising the perm-replay
        branch that pins argsort's tie order."""
        ref = _waterfill_np(capacity, np.asarray(demands, dtype=float))
        assert _waterfill_py(capacity, demands) == ref.tolist()

    def test_dispatch_boundary_is_seamless(self):
        """waterfill_rates switches paths at _SMALL_N; results on either
        side of the cutoff must agree with both implementations."""
        rng = np.random.default_rng(9)
        for n in (_SMALL_N, _SMALL_N + 1):
            demands = (rng.random(n) * 50.0).tolist()
            capacity = 0.4 * sum(demands)
            via_rates = waterfill_rates(capacity, demands)
            assert via_rates == _waterfill_py(capacity, demands)
            assert via_rates == _waterfill_np(
                capacity, np.asarray(demands)).tolist()
