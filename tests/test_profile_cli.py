"""Tests for ``python -m repro profile`` (the cProfile hot-spot runner)."""

import cProfile
import json
import pstats

import pytest

from repro.experiments.profile import hotspot_table, main


def _stats_of(fn):
    prof = cProfile.Profile()
    prof.enable()
    fn()
    prof.disable()
    return pstats.Stats(prof)


class TestHotspotTable:
    def test_formats_rows_and_total(self):
        stats = _stats_of(lambda: sum(i * i for i in range(1000)))
        table = hotspot_table(stats, top=5)
        lines = table.splitlines()
        assert "ncalls" in lines[0] and "callsite" in lines[0]
        assert "total internal time" in lines[-1]
        assert len(lines) <= 5 + 2  # header + top rows + footer

    def test_sort_keys(self):
        stats = _stats_of(lambda: [str(i) for i in range(100)])
        for sort in ("tottime", "cumtime", "ncalls"):
            assert "callsite" in hotspot_table(stats, sort=sort)

    def test_bad_sort_rejected(self):
        stats = _stats_of(lambda: None)
        with pytest.raises(ValueError):
            hotspot_table(stats, sort="percall")


class TestProfileCli:
    def test_unknown_experiment_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["not-an-experiment"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_profiles_experiment_and_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "model.trace.json"
        stats = tmp_path / "model.pstats"
        rc = main(["model", "--quiet", "--top", "5",
                   "--trace-out", str(trace), "--stats-out", str(stats)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "callsite" in out
        assert "chrome trace written" in out
        payload = json.loads(trace.read_text())
        assert "traceEvents" in payload  # loadable by chrome://tracing
        pstats.Stats(str(stats))  # raw dump round-trips
