"""Unit tests for SystemConfig (Table I) validation and derived values."""

import pytest

from repro.core.config import SystemConfig


class TestDefaults:
    def test_paper_stream_rate(self):
        # Section V.A: "streamed at a bit rate of 768 Kbps"
        assert SystemConfig().stream_rate_bps == 768_000.0

    def test_paper_status_cadence(self):
        # Section V.A: status reports "sent out every 5 minutes"
        assert SystemConfig().status_report_period_s == 300.0

    def test_paper_server_fleet(self):
        # Section V.A: 24 dedicated servers with 100 Mbps
        cfg = SystemConfig()
        assert cfg.n_servers == 24
        assert cfg.server_upload_bps == 100_000_000.0

    def test_substream_rate(self):
        cfg = SystemConfig()
        assert cfg.substream_rate_bps == cfg.stream_rate_bps / cfg.n_substreams

    def test_block_is_one_second_of_substream(self):
        cfg = SystemConfig()
        assert cfg.block_bits == cfg.substream_rate_bps

    def test_upload_slots(self):
        cfg = SystemConfig()
        assert cfg.upload_slots(cfg.substream_rate_bps * 3) == pytest.approx(3.0)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("stream_rate_bps", 0.0),
        ("n_substreams", 0),
        ("buffer_seconds", 0.0),
        ("ts_seconds", 0.0),
        ("tp_seconds", -1.0),
        ("ta_seconds", -0.1),
        ("player_buffer_s", 0.0),
        ("nat_traversal_prob", 1.5),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            SystemConfig(**{field: value})

    def test_target_partners_bounded_by_max(self):
        with pytest.raises(ValueError):
            SystemConfig(target_partners=10, max_partners=8)

    def test_mcache_must_hold_bootstrap_sample(self):
        with pytest.raises(ValueError):
            SystemConfig(mcache_size=4, bootstrap_sample=8)

    def test_tp_must_fit_in_buffer(self):
        with pytest.raises(ValueError):
            SystemConfig(tp_seconds=60.0, buffer_seconds=60.0)

    @pytest.mark.parametrize("mode", ["tp", "latest", "oldest"])
    def test_valid_offset_modes(self, mode):
        assert SystemConfig(initial_offset_mode=mode).initial_offset_mode == mode

    def test_invalid_offset_mode_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(initial_offset_mode="middle")

    def test_invalid_parent_choice_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(parent_choice="greedy")

    def test_invalid_mcache_replacement_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(mcache_replacement="lru")


class TestOverrides:
    def test_with_overrides_returns_new_object(self):
        a = SystemConfig()
        b = a.with_overrides(n_substreams=6)
        assert a.n_substreams == 4
        assert b.n_substreams == 6

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError):
            SystemConfig().with_overrides(ts_seconds=-1.0)


class TestTable1:
    def test_has_all_seven_symbols(self):
        symbols = [row[0] for row in SystemConfig().table1()]
        assert symbols == ["R", "K", "B", "T_s", "T_p", "T_a", "D_p"]

    def test_values_reflect_config(self):
        cfg = SystemConfig(n_substreams=6)
        rows = {r[0]: r[2] for r in cfg.table1()}
        assert rows["K"] == "6"
        assert rows["R"] == "768 kbps"
