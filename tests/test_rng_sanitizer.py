"""The runtime seed-discipline sanitizer (repro.sim.rng).

The static pass (repro.check) keeps undisciplined RNG *code* out of the
tree; the sanitizer catches discipline violations that only manifest at
runtime -- a stream created outside the declared set, or drawn from the
wrong subsystem scope.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.runtime.driver import sample_workload
from repro.sim.rng import RngDisciplineError, RngHub, sanitize_mode_from_env
from repro.workload.scenarios import steady_audience


# --- accounting -----------------------------------------------------------

def test_draws_bit_identical_with_sanitizer_on():
    plain = RngHub(42, sanitize=False).stream("s").random(16)
    sanitized = RngHub(42, sanitize="strict").stream("s").random(16)
    assert np.array_equal(plain, sanitized)


def test_draw_counts_accumulate_per_stream():
    hub = RngHub(1, sanitize="warn")
    hub.stream("a").random()
    hub.stream("a").integers(10)
    hub.stream("b").normal(size=3)  # one draw event, n variates
    assert hub.draw_counts == {"a": 2, "b": 1}


def test_disabled_hub_returns_raw_generator():
    # the common path must carry zero proxy overhead
    hub = RngHub(0, sanitize=False)
    assert isinstance(hub.stream("x"), np.random.Generator)
    assert hub.draw_counts == {}


# --- out-of-owner draws ---------------------------------------------------

def test_out_of_owner_draw_raises_in_strict_mode():
    hub = RngHub(3, sanitize="strict")
    hub.declare("workload.arrivals", owner="workload")
    with hub.owned_by("workload"):
        hub.stream("workload.arrivals").random()  # correct scope: fine
    with pytest.raises(RngDisciplineError, match="out_of_owner_draw"):
        with hub.owned_by("protocol"):
            hub.stream("workload.arrivals").random()


def test_out_of_owner_draw_recorded_in_warn_mode():
    hub = RngHub(3, sanitize="warn")
    hub.declare("workload.arrivals", owner="workload")
    with hub.owned_by("protocol"):
        hub.stream("workload.arrivals").random()
    kinds = [kind for kind, _ in hub.violations]
    assert kinds == ["out_of_owner_draw"]


def test_unscoped_draw_from_owned_stream_is_allowed():
    # no active owner scope: legacy callers keep working
    hub = RngHub(3, sanitize="strict")
    hub.declare("s", owner="workload")
    hub.stream("s").random()
    assert hub.violations == []


# --- undeclared streams ---------------------------------------------------

def test_undeclared_stream_detected_once_declarations_exist():
    hub = RngHub(5, sanitize="strict")
    hub.declare("known")
    with pytest.raises(RngDisciplineError, match="undeclared_stream"):
        hub.stream("surprise")


def test_hub_without_declarations_stays_in_accounting_mode():
    hub = RngHub(5, sanitize="strict")
    hub.stream("anything").random()
    assert hub.violations == []
    assert hub.draw_counts == {"anything": 1}


# --- opt-in plumbing ------------------------------------------------------

def test_env_var_opt_in(monkeypatch):
    monkeypatch.setenv("REPRO_RNG_SANITIZE", "strict")
    assert sanitize_mode_from_env() == "strict"
    assert RngHub(0).sanitize == "strict"
    monkeypatch.setenv("REPRO_RNG_SANITIZE", "warn")
    assert RngHub(0).sanitize == "warn"
    monkeypatch.setenv("REPRO_RNG_SANITIZE", "0")
    assert RngHub(0).sanitize is False
    monkeypatch.delenv("REPRO_RNG_SANITIZE")
    assert RngHub(0).sanitize is False


def test_fork_propagates_sanitize_mode():
    hub = RngHub(9, sanitize="warn")
    assert hub.fork(2).sanitize == "warn"
    assert RngHub(9).fork(2).sanitize is False


# --- obs surfacing --------------------------------------------------------

def test_violations_surface_as_obs_counters():
    with obs.session() as ctx:
        hub = RngHub(1, sanitize="warn")
        hub.declare("owned", owner="a")
        with hub.owned_by("b"):
            hub.stream("owned").random()
        counts = ctx.registry.counter_values()
    assert counts.get("rng.sanitizer.violations") == 1
    assert counts.get("rng.sanitizer.out_of_owner_draw") == 1


# --- integration with the runtime driver ----------------------------------

def test_sample_workload_passes_strict_sanitizer(monkeypatch):
    scenario = steady_audience(rate_per_s=0.2, horizon_s=120.0)
    baseline = sample_workload(scenario, seed=4)
    monkeypatch.setenv("REPRO_RNG_SANITIZE", "strict")
    sanitized = sample_workload(scenario, seed=4)
    # the driver's declared-streams discipline holds, and the realization
    # is byte-identical with the sanitizer active
    assert np.array_equal(baseline.times, sanitized.times)
    assert np.array_equal(baseline.durations, sanitized.durations)
