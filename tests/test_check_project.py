"""Two-pass project analysis: fact harvest, project rules, cache, SARIF.

The harvest tests run against the *real* ``telemetry/reports.py`` and
``analysis/streaming.py`` modules, so a schema change there that the
harvester cannot see breaks loudly here -- the checker's own contract
with the codebase is itself under test.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.check import check_paths, check_source, harvest_file
from repro.check.cli import main as check_main
from repro.check.engine import RULESET_VERSION, all_rules
from repro.check.project import ProjectContext, module_of

REPO = Path(__file__).parent.parent
REPORTS = REPO / "src" / "repro" / "telemetry" / "reports.py"
STREAMING = REPO / "src" / "repro" / "analysis" / "streaming.py"


def _harvest(path: Path):
    source = path.read_text(encoding="utf-8")
    return harvest_file(ast.parse(source), str(path), source)


# --- pass 1: harvest on the real telemetry module -------------------------

def test_harvest_report_wire_schema():
    facts = _harvest(REPORTS)
    classes = facts.report_classes
    assert {"Report", "ActivityReport", "QoSReport", "TrafficReport",
            "PartnerReport"} <= set(classes)

    # header keys come from the base class; own keys from each subclass
    assert set(classes["Report"].param_writes) == {
        "type", "t", "node", "user", "sess"}
    assert set(classes["ActivityReport"].param_writes) == {
        "ev", "try", "pub", "why"}
    assert set(classes["QoSReport"].param_writes) == {
        "ci", "buf", "par", "play"}
    assert set(classes["TrafficReport"].param_writes) == {
        "up", "down", "tup", "tdown"}
    assert set(classes["PartnerReport"].param_writes) == {
        "np", "nin", "nout", "pev"}

    # the f-string twins carry exactly the same keys (SCH001 pins this)
    for name in ("Report", "ActivityReport", "QoSReport",
                 "TrafficReport", "PartnerReport"):
        rc = classes[name]
        assert set(rc.wire_writes) == set(rc.param_writes), name


def test_harvest_kwarg_to_wire_key_mapping():
    facts = _harvest(REPORTS)
    traffic = facts.report_classes["TrafficReport"]
    assert traffic.kwarg_keys["total_up"] == ["tup"]
    assert traffic.kwarg_keys["bytes_down"] == ["down"]
    qos = facts.report_classes["QoSReport"]
    assert qos.kwarg_keys["continuity"] == ["ci"]
    # events=events is precomputed -- no extractable wire mapping
    partner = facts.report_classes["PartnerReport"]
    assert "events" not in partner.kwarg_keys


def test_harvest_global_parse_report_reads():
    facts = _harvest(REPORTS)
    assert "type" in facts.global_param_reads


def test_harvest_fold_reads_on_real_streaming_module():
    facts = _harvest(STREAMING)
    reads = {(cls, attr) for cls, attr, _, _ in facts.fold_reads}
    assert ("UploadTotalsFold", "total_up") in reads
    assert ("ContinuitySamplesFold", "continuity") in reads
    assert ("SessionTableFold", "session_id") in reads
    # delegating folds read no attributes directly
    assert not any(cls == "ConcurrentUsersFold" for cls, _ in reads)


def test_project_context_inherited_emits_cover_header():
    facts = _harvest(REPORTS)
    project = ProjectContext([facts])
    # subclass emits include the inherited header fields
    assert {"type", "t", "node", "user", "sess", "ci",
            "tup"} <= project.class_emitted("QoSReport") | \
        project.class_emitted("TrafficReport")
    assert "t" in project.class_emitted("QoSReport")
    # and the merged emitted-key table covers every consumed key
    assert project.read_keys <= project.emitted_keys


def test_harvest_metric_emits_and_prefixes():
    src = (
        "def instrument(registry, obs, kind):\n"
        "    registry.counter('engine.events_executed')\n"
        "    obs.inc(f'rng.sanitizer.{kind}')\n"
        "    registry.gauge('run.live_peers')\n"
    )
    facts = harvest_file(ast.parse(src), "src/repro/x.py", src)
    assert set(facts.metric_emits) == {"engine.events_executed",
                                       "run.live_peers"}
    assert facts.metric_prefixes == ["rng.sanitizer."]
    project = ProjectContext([facts])
    assert project.emits_metric("rng.sanitizer.out_of_owner_draw")
    assert not project.emits_metric("rng.other.thing")


def test_module_of_maps_src_layout():
    assert module_of("src/repro/net/peer.py") == "repro.net.peer"
    assert module_of("src/repro/check/__init__.py") == "repro.check"
    assert module_of("standalone.py") == "standalone"


# --- pass 2: cross-file project rules -------------------------------------

def _write_tree(tmp_path, files):
    root = tmp_path / "proj"
    for name, body in files.items():
        p = root / name
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(body, encoding="utf-8")
    return str(root)


PRODUCER = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class PingReport:\n"
    "    time: float\n"
    "    rtt: float\n"
    "    def to_params(self):\n"
    "        return {'t': f'{self.time:.3f}', 'rtt': f'{self.rtt:.4f}'}\n"
    "    @classmethod\n"
    "    def from_params(cls, p):\n"
    "        return cls(time=float(p['t']), rtt=float(p['rtt']))\n"
)


def test_sch001_fires_across_files(tmp_path):
    # the fold lives in a different module than the report: only the
    # merged project view can see the drifted read
    consumer = (
        "class RttFold:\n"
        "    def update(self, report):\n"
        "        self.acc = report.rtt + report.jitter\n"
    )
    root = _write_tree(tmp_path, {"producer.py": PRODUCER,
                                  "consumer.py": consumer})
    report = check_paths([root])
    assert [f.rule for f in report.findings] == ["SCH001"]
    assert "jitter" in report.findings[0].message
    assert report.findings[0].path.endswith("consumer.py")


def test_sch001_clean_when_schema_matches(tmp_path):
    consumer = (
        "class RttFold:\n"
        "    def update(self, report):\n"
        "        self.acc = report.rtt\n"
    )
    root = _write_tree(tmp_path, {"producer.py": PRODUCER,
                                  "consumer.py": consumer})
    assert check_paths([root]).findings == []


def test_sch002_is_warn_severity_and_does_not_gate_exit(tmp_path, capsys):
    producer = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class PingReport:\n"
        "    time: float\n"
        "    ttl: int\n"
        "    def to_params(self):\n"
        "        return {'t': f'{self.time:.3f}', 'ttl': str(self.ttl)}\n"
        "    @classmethod\n"
        "    def from_params(cls, p):\n"
        "        return cls(time=float(p['t']), ttl=0)\n"
    )
    root = _write_tree(tmp_path, {"producer.py": producer})
    report = check_paths([root])
    assert [f.rule for f in report.findings] == ["SCH002"]
    assert report.findings[0].severity == "warn"
    assert report.exit_code == 0  # warn-only runs stay green
    assert check_main([root]) == 0
    assert "[warn]" in capsys.readouterr().out


def test_obs001_fires_across_files(tmp_path):
    emitter = "def instrument(reg):\n    reg.counter('pipe.blocks_in')\n"
    consumer = ("def render(m):\n"
                "    return m.get('pipe.blocks_in'), "
                "m.get('pipe.blocks_out')\n")
    root = _write_tree(tmp_path, {"emitter.py": emitter,
                                  "consumer.py": consumer})
    report = check_paths([root])
    assert [f.rule for f in report.findings] == ["OBS001"]
    # (membership-probing the dotted name directly would itself look
    # like a metric reference to the harvester)
    assert "blocks_out" in report.findings[0].message


def test_asy002_resolves_through_imports(tmp_path):
    helpers = ("import asyncio\n"
               "async def drain_queue():\n"
               "    await asyncio.sleep(0)\n")
    caller = ("from helpers import drain_queue\n"
              "def tick():\n"
              "    drain_queue()\n")
    root = _write_tree(tmp_path, {"helpers.py": helpers,
                                  "caller.py": caller})
    report = check_paths([root])
    assert [f.rule for f in report.findings] == ["ASY002"]
    assert report.findings[0].path.endswith("caller.py")


# --- satellite: multi-line noqa anchoring ---------------------------------

def test_noqa_on_any_line_of_a_wrapped_statement(tmp_path):
    # the finding anchors at line 3 (statement start); the marker sits
    # on the *continuation* line -- v1 missed this, v2 must not
    src = ("import random\n"
           "def f(xs):\n"
           "    return (random.random()\n"
           "            + len(xs))  # repro: noqa[DET001] wrapped stmt\n")
    assert check_source(src, path="src/repro/x.py") == []


def test_noqa_inner_statement_does_not_blanket_the_block():
    # a marker inside an if-body line covers that statement, not the
    # sibling statement above it
    src = ("import random\n"
           "def f(flag):\n"
           "    a = random.random()\n"
           "    if flag:\n"
           "        b = random.random()  # repro: noqa[DET001] inner\n"
           "    return a\n")
    findings = check_source(src, path="src/repro/x.py")
    assert [(f.rule, f.line) for f in findings] == [("DET001", 3)]


# --- satellite: content-hash result cache ---------------------------------

def _tree_with_findings(tmp_path):
    return _write_tree(tmp_path, {
        "producer.py": PRODUCER,
        "drifty.py": ("class JitterFold:\n"
                      "    def update(self, report):\n"
                      "        self.acc = report.jitter\n"),
        "dirty.py": "import random\nx = random.random()\n",
    })


def test_cache_results_are_byte_identical(tmp_path):
    root = _tree_with_findings(tmp_path)
    cache_dir = str(tmp_path / "cache")

    plain = check_paths([root])
    cold = check_paths([root], cache_dir=cache_dir)
    warm = check_paths([root], cache_dir=cache_dir)

    baseline = [f.to_dict() for f in plain.findings]
    assert baseline  # the tree has DET001 + SCH001 findings
    assert [f.to_dict() for f in cold.findings] == baseline
    assert [f.to_dict() for f in warm.findings] == baseline
    plain_doc, warm_doc = plain.to_dict(), warm.to_dict()
    plain_doc.pop("cache"), warm_doc.pop("cache")
    assert json.dumps(plain_doc) == json.dumps(warm_doc)

    assert cold.cache_hits == 0 and cold.cache_misses == 3
    assert warm.cache_hits == 3 and warm.cache_misses == 0


def test_cache_serves_suppressions_and_project_facts(tmp_path):
    # project findings are recomputed from cached facts, including the
    # statement-span suppression map
    root = _write_tree(tmp_path, {
        "producer.py": PRODUCER,
        "consumer.py": ("class RttFold:\n"
                        "    def update(self, report):\n"
                        "        self.acc = (report.rtt\n"
                        "                    + report.jitter"
                        ")  # repro: noqa[SCH001]\n"),
    })
    cache_dir = str(tmp_path / "cache")
    cold = check_paths([root], cache_dir=cache_dir)
    warm = check_paths([root], cache_dir=cache_dir)
    assert cold.findings == [] and warm.findings == []
    assert warm.cache_hits == 2


def test_cache_invalidated_by_content_and_rule_set(tmp_path):
    root = _tree_with_findings(tmp_path)
    cache_dir = str(tmp_path / "cache")
    check_paths([root], cache_dir=cache_dir)

    # content change: only the touched file misses
    dirty = Path(root) / "dirty.py"
    dirty.write_text("import random\ny = random.random()\n")
    second = check_paths([root], cache_dir=cache_dir)
    assert second.cache_hits == 2 and second.cache_misses == 1

    # rule-set change: nothing is served from the old signature
    third = check_paths([root], cache_dir=cache_dir, select=["DET001"])
    assert third.cache_hits == 0 and third.cache_misses == 3
    assert [f.rule for f in third.findings] == ["DET001"]


def test_cli_cache_flag_round_trips(tmp_path, capsys):
    root = _tree_with_findings(tmp_path)
    cache_dir = str(tmp_path / "cache")
    assert check_main([root, "--cache", cache_dir, "--output", "json"]) == 1
    first = json.loads(capsys.readouterr().out)
    assert check_main([root, "--cache", cache_dir, "--output", "json"]) == 1
    second = json.loads(capsys.readouterr().out)
    assert first["findings"] == second["findings"]
    assert second["cache"]["hits"] == 3


# --- satellite: SARIF output ----------------------------------------------

def test_sarif_document_shape(tmp_path, capsys):
    root = _tree_with_findings(tmp_path)
    assert check_main([root, "--output", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-check"
    assert driver["version"] == RULESET_VERSION
    assert {r["id"] for r in driver["rules"]} == \
        {r.id for r in all_rules()}
    assert run["results"], "expected SARIF results"
    for result in run["results"]:
        assert result["level"] in ("error", "warning")
        (loc,) = result["locations"]
        region = loc["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    sch = [r for r in driver["rules"] if r["id"] == "SCH002"]
    assert sch[0]["defaultConfiguration"]["level"] == "warning"


def test_sarif_clean_run_has_no_results(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert check_main([str(clean), "--output", "sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"] == []
