"""Unit tests for the seeded random-stream hub."""

import numpy as np

from repro.sim.rng import RngHub


class TestStreams:
    def test_same_name_returns_same_generator(self):
        hub = RngHub(1)
        assert hub.stream("a") is hub.stream("a")

    def test_different_names_give_independent_sequences(self):
        hub = RngHub(1)
        a = hub.stream("a").random(100)
        b = hub.stream("b").random(100)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces_streams(self):
        a = RngHub(7).stream("x").random(50)
        b = RngHub(7).stream("x").random(50)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngHub(7).stream("x").random(50)
        b = RngHub(8).stream("x").random(50)
        assert not np.allclose(a, b)

    def test_stream_independent_of_creation_order(self):
        hub1 = RngHub(3)
        hub1.stream("first")
        x1 = hub1.stream("target").random(20)
        hub2 = RngHub(3)
        x2 = hub2.stream("target").random(20)  # created without "first"
        assert np.allclose(x1, x2)

    def test_draws_on_one_stream_do_not_affect_another(self):
        hub1 = RngHub(3)
        hub1.stream("noise").random(1000)
        x1 = hub1.stream("target").random(20)
        hub2 = RngHub(3)
        x2 = hub2.stream("target").random(20)
        assert np.allclose(x1, x2)

    def test_seed_property(self):
        assert RngHub(42).seed == 42


class TestFork:
    def test_fork_differs_from_parent(self):
        hub = RngHub(5)
        child = hub.fork(0)
        a = hub.stream("s").random(30)
        b = child.stream("s").random(30)
        assert not np.allclose(a, b)

    def test_forks_with_different_salts_differ(self):
        hub = RngHub(5)
        a = hub.fork(1).stream("s").random(30)
        b = hub.fork(2).stream("s").random(30)
        assert not np.allclose(a, b)

    def test_fork_is_deterministic(self):
        a = RngHub(5).fork(3).stream("s").random(30)
        b = RngHub(5).fork(3).stream("s").random(30)
        assert np.allclose(a, b)
