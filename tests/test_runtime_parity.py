"""The cross-engine parity harness: comparisons, report, CLI plumbing.

Full-size parity runs live in CI's parity smoke job (and behind
``python -m repro parity``); here we exercise the comparison semantics
and a tiny end-to-end run so the suite stays fast.
"""

import math

import pytest

from repro.runtime.parity import (
    ABSOLUTE_FLOOR,
    DEFAULT_TOLERANCES,
    MetricComparison,
    main as parity_main,
    paper_metrics,
    run_parity,
)
from repro.workload.scenarios import steady_audience


def tiny_scenario():
    return steady_audience(rate_per_s=0.3, horizon_s=150.0, n_servers=2)


class TestMetricComparison:
    def test_within_relative_tolerance(self):
        c = MetricComparison("m", detailed=100.0, fast=95.0, tolerance=0.10)
        assert c.rel_diff == pytest.approx(0.05)
        assert c.ok

    def test_outside_relative_tolerance(self):
        c = MetricComparison("m", detailed=100.0, fast=50.0, tolerance=0.10)
        assert not c.ok

    def test_absolute_floor_rescues_near_zero(self):
        c = MetricComparison("m", detailed=0.01, fast=0.0, tolerance=0.10,
                             absolute_floor=0.05)
        assert c.rel_diff == 1.0
        assert c.ok

    def test_nan_fails(self):
        c = MetricComparison("m", detailed=float("nan"), fast=1.0,
                             tolerance=10.0, absolute_floor=10.0)
        assert not c.ok

    def test_both_zero_ok(self):
        c = MetricComparison("m", detailed=0.0, fast=0.0, tolerance=0.0)
        assert c.rel_diff == 0.0
        assert c.ok


class TestTolerances:
    def test_every_metric_has_tolerance_and_floor(self):
        assert set(DEFAULT_TOLERANCES) == set(ABSOLUTE_FLOOR)
        assert all(t > 0 for t in DEFAULT_TOLERANCES.values())
        assert all(f >= 0 for f in ABSOLUTE_FLOOR.values())

    def test_unknown_tolerance_rejected(self):
        with pytest.raises(ValueError, match="unknown parity metrics"):
            run_parity(tiny_scenario(), tolerances={"nope": 0.1})


class TestRunParity:
    def test_report_structure_and_render(self):
        report = run_parity(tiny_scenario(), seed=0, keep_results=True)
        assert {c.name for c in report.comparisons} == set(DEFAULT_TOLERANCES)
        assert report.detailed_result.engine == "detailed"
        assert report.fast_result.engine == "fast"
        text = report.render()
        assert "detailed vs fast" in text
        assert ("PARITY OK" in text) or ("PARITY FAILED" in text)
        assert text.endswith("PARITY OK") == report.ok

    def test_identical_workload_feeds_both_engines(self):
        report = run_parity(tiny_scenario(), seed=0, keep_results=True)
        w_det = report.detailed_result.workload
        w_fast = report.fast_result.workload
        assert w_det.times.tobytes() == w_fast.times.tobytes()
        assert w_det.durations.tobytes() == w_fast.durations.tobytes()

    def test_paper_metrics_keys(self):
        report = run_parity(tiny_scenario(), seed=0, keep_results=True)
        m = paper_metrics(report.detailed_result.log, 150.0)
        assert set(m) == set(DEFAULT_TOLERANCES)
        assert m["peak_concurrent_users"] >= 1
        assert (math.isnan(m["mean_continuity"])
                or 0.0 <= m["mean_continuity"] <= 1.0)

    def test_results_dropped_by_default(self):
        report = run_parity(tiny_scenario(), seed=0)
        assert report.detailed_result is None
        assert report.fast_result is None


class TestParityCli:
    def test_unknown_scenario_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            parity_main(["--scenario", "nope"])
        assert exc.value.code == 2

    def test_dispatch_from_repro_cli(self, capsys):
        # `python -m repro parity` routes here before argparse
        from repro.experiments.cli import main as repro_main

        with pytest.raises(SystemExit) as exc:
            repro_main(["parity", "--scenario", "nope"])
        assert exc.value.code == 2


class TestCampaignEngineKey:
    def test_engine_key_changes_run_key(self):
        from repro.campaign.spec import CampaignSpec

        plain = CampaignSpec.from_dict(
            {"name": "x", "entries": [{"experiment": "fig3"}]},
            code_version=None)
        fast = CampaignSpec.from_dict(
            {"name": "x",
             "entries": [{"experiment": "fig3", "engine": "fast"}]},
            code_version=None)
        assert fast.runs[0].overrides == {"engine": "fast"}
        assert plain.runs[0].key != fast.runs[0].key

    def test_engine_value_validated(self):
        from repro.campaign.spec import CampaignSpec, SpecError

        with pytest.raises(SpecError, match="engine"):
            CampaignSpec.from_dict(
                {"name": "x",
                 "entries": [{"experiment": "fig3", "engine": "warp"}]},
                code_version=None)

    def test_engine_conflicts_rejected(self):
        from repro.campaign.spec import CampaignSpec, SpecError

        for entry in (
            {"experiment": "fig3", "engine": "fast",
             "overrides": {"engine": "fast"}},
            {"experiment": "fig3", "engine": "fast",
             "grid": {"engine": ["fast"]}},
        ):
            with pytest.raises(SpecError, match="engine"):
                CampaignSpec.from_dict({"name": "x", "entries": [entry]},
                                       code_version=None)

    def test_engine_grid_sweeps_both(self):
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec.from_dict(
            {"name": "x",
             "entries": [{"experiment": "fig3",
                          "grid": {"engine": ["detailed", "fast"]}}]},
            code_version=None)
        engines = sorted(r.overrides["engine"] for r in spec.runs)
        assert engines == ["detailed", "fast"]
