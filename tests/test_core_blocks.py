"""Unit and property tests for stream framing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import StreamGeometry


class TestFraming:
    def test_round_robin_assignment(self):
        g = StreamGeometry(4)
        assert [g.substream_of(s) for s in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_local_index(self):
        g = StreamGeometry(4)
        assert g.local_index(0) == 0
        assert g.local_index(3) == 0
        assert g.local_index(4) == 1
        assert g.local_index(11) == 2

    def test_global_seq_inverse(self):
        g = StreamGeometry(3)
        assert g.global_seq(2, 5) == 17

    def test_single_substream_degenerates_to_identity(self):
        g = StreamGeometry(1)
        assert g.substream_of(42) == 0
        assert g.local_index(42) == 42
        assert g.global_seq(0, 42) == 42

    def test_negative_seq_rejected(self):
        g = StreamGeometry(4)
        with pytest.raises(ValueError):
            g.substream_of(-1)
        with pytest.raises(ValueError):
            g.local_index(-1)

    def test_bad_substream_rejected(self):
        g = StreamGeometry(4)
        with pytest.raises(ValueError):
            g.global_seq(4, 0)
        with pytest.raises(ValueError):
            g.global_seq(-1, 0)

    def test_negative_local_index_rejected(self):
        with pytest.raises(ValueError):
            StreamGeometry(4).global_seq(0, -1)

    @given(k=st.integers(1, 16), seq=st.integers(0, 10**9))
    @settings(max_examples=200, deadline=None)
    def test_property_roundtrip(self, k, seq):
        g = StreamGeometry(k)
        assert g.global_seq(g.substream_of(seq), g.local_index(seq)) == seq

    @given(k=st.integers(1, 16), sub=st.integers(0, 15), idx=st.integers(0, 10**6))
    @settings(max_examples=200, deadline=None)
    def test_property_inverse_roundtrip(self, k, sub, idx):
        if sub >= k:
            return
        g = StreamGeometry(k)
        s = g.global_seq(sub, idx)
        assert g.substream_of(s) == sub
        assert g.local_index(s) == idx


class TestTiming:
    def test_deadline_of_start_block(self):
        g = StreamGeometry(4)
        assert g.deadline(100, playout_origin_s=50.0, playout_start_seq=100) == 50.0

    def test_deadline_advances_at_global_rate(self):
        g = StreamGeometry(4, block_seconds=1.0)
        # 4 blocks ahead = 1 second later
        assert g.deadline(104, 50.0, 100) == pytest.approx(51.0)

    def test_global_block_rate(self):
        assert StreamGeometry(4, block_seconds=1.0).blocks_per_second_global() == 4.0
        assert StreamGeometry(2, block_seconds=0.5).blocks_per_second_global() == 4.0

    def test_live_edge(self):
        g = StreamGeometry(4)
        assert g.live_edge_local(0.0) == -1
        assert g.live_edge_local(0.5) == -1
        assert g.live_edge_local(1.0) == 0
        assert g.live_edge_local(10.7) == 9

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            StreamGeometry(0)
        with pytest.raises(ValueError):
            StreamGeometry(4, block_seconds=0.0)
