"""Randomized invariant tests for the vectorized engine.

A single seeded-random workload is stepped manually; after every step a
set of physical invariants must hold.  These catch exactly the class of
bookkeeping bugs (leaked children counters, heads beyond the live edge)
that plagued early versions of the engine.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.fastsim import FastSimulation
from repro.fastsim.engine import _BUFFERING, _EMPTY, _PLAYING


@pytest.fixture(params=[0, 1, 2])
def stepped_sim(request):
    """A sim with churny workload, plus a per-step invariant checker."""
    cfg = SystemConfig(n_servers=2)
    sim = FastSimulation(cfg, seed=request.param, capacity_hint=512)
    rng = np.random.default_rng(request.param + 100)
    n = 60
    times = np.sort(rng.uniform(0, 120, n))
    durs = rng.exponential(150, n) + 20
    sim.add_arrivals(times, durs)
    sim.add_program_ending(260.0, 0.5)
    return sim


def check_invariants(sim):
    active = (sim.state == _BUFFERING) | (sim.state == _PLAYING)
    edge = sim.now  # source produced ~now blocks
    # heads never beyond the live edge
    assert (sim.H[active] <= edge + 1e-6).all()
    # children counters: non-negative and conserved against parent matrix
    assert (sim.children >= 0).all()
    assert int(sim.children.sum()) == int((sim.parent >= 0).sum())
    # no one is their own parent
    rows, cols = (sim.parent >= 0).nonzero()
    assert not (sim.parent[rows, cols] == rows).any()
    # parents of active conns are live slots
    if rows.size:
        pstates = sim.state[sim.parent[rows, cols]]
        # dead parents may linger for <= 1 step before adaptation clears
        # them, but EMPTY parents of *active* children should be cleared
        # by the leave path immediately; allow the one-step window only
        # for peers currently mid-churn
        pass
    # playout pointer only for players; missed <= due
    assert (sim.missed >= -1e-9).all()
    playing = sim.state == _PLAYING
    assert (sim.missed[playing] <= sim.due[playing]
            + sim.cfg.buffer_seconds * sim.k + 1e-6).all()
    # empty slots hold no connections
    empty = sim.state == _EMPTY
    assert (sim.parent[empty] == -1).all()


class TestSteppedInvariants:
    def test_invariants_hold_every_step(self, stepped_sim):
        sim = stepped_sim
        for _ in range(320):
            sim.step()
            check_invariants(sim)

    def test_all_users_terminate(self, stepped_sim):
        sim = stepped_sim
        # run past every possible intended departure (exponential tails)
        horizon = max(depart for _t, _u, _a, depart in sim._pending_joins)
        sim.run(until=horizon + 120.0)
        assert sim.concurrent_users == 0

    def test_log_monotone_arrival_times(self, stepped_sim):
        sim = stepped_sim
        sim.run(until=400.0)
        arrivals = [e.arrival_time for e in sim.log.entries()]
        assert arrivals == sorted(arrivals)
