"""Tests for the statistics helpers and session reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sessions import SessionTable
from repro.analysis.stats import Cdf, bin_timeseries, tail_fraction
from repro.telemetry.reports import ActivityEvent, ActivityReport, LeaveReason
from repro.telemetry.server import LogServer


class TestCdf:
    def test_basic(self):
        cdf = Cdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(2.0) == 0.5
        assert cdf.at(0.5) == 0.0
        assert cdf.at(10.0) == 1.0

    def test_median_and_quantiles(self):
        cdf = Cdf.from_samples(range(1, 101))
        assert cdf.median == 50
        assert cdf.quantile(0.9) == 90
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(1.0) == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([])

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([1.0]).quantile(1.5)

    def test_evaluate_grid(self):
        cdf = Cdf.from_samples([1, 2, 3, 4])
        assert list(cdf.evaluate([0, 2, 5])) == [0.0, 0.5, 1.0]

    def test_mean(self):
        assert Cdf.from_samples([1.0, 3.0]).mean == 2.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_property_monotone_and_bounded(self, samples):
        cdf = Cdf.from_samples(samples)
        grid = np.linspace(min(samples) - 1, max(samples) + 1, 20)
        vals = cdf.evaluate(grid)
        assert (np.diff(vals) >= 0).all()
        assert vals[0] >= 0.0 and vals[-1] == 1.0


class TestBinning:
    def test_means_per_bin(self):
        centers, means, counts = bin_timeseries(
            [0.5, 1.5, 1.6], [10.0, 20.0, 40.0], bin_s=1.0, t1=3.0
        )
        assert means[0] == 10.0
        assert means[1] == 30.0
        assert np.isnan(means[2])
        assert counts.tolist() == [1, 2, 0]

    def test_centers(self):
        centers, _m, _c = bin_timeseries([0.0], [1.0], bin_s=2.0, t1=6.0)
        assert centers.tolist() == [1.0, 3.0, 5.0]

    def test_out_of_range_samples_dropped(self):
        _c, means, counts = bin_timeseries(
            [-5.0, 100.0], [1.0, 1.0], bin_s=1.0, t0=0.0, t1=2.0
        )
        assert counts.sum() == 0

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            bin_timeseries([1.0], [1.0, 2.0], bin_s=1.0)

    def test_tail_fraction(self):
        assert tail_fraction([1, 2, 3, 4], 2.5) == 0.5
        with pytest.raises(ValueError):
            tail_fraction([], 1.0)


def log_with_session(events, node_id=1, user_id=1, session_id=1, attempt=1,
                     server=None, public=True):
    server = server if server is not None else LogServer()
    for event, t, reason in events:
        server.receive_report(t, ActivityReport(
            time=t, node_id=node_id, user_id=user_id, session_id=session_id,
            event=event, attempt=attempt, address_public=public, reason=reason,
        ))
    return server


class TestSessionReconstruction:
    def test_normal_session(self):
        server = log_with_session([
            (ActivityEvent.JOIN, 10.0, None),
            (ActivityEvent.START_SUBSCRIPTION, 13.0, None),
            (ActivityEvent.PLAYER_READY, 25.0, None),
            (ActivityEvent.LEAVE, 100.0, LeaveReason.NORMAL),
        ])
        table = SessionTable.from_log(server)
        assert len(table) == 1
        sess = table.sessions()[0]
        assert sess.is_normal
        assert sess.duration == 90.0
        assert sess.start_subscription_delay == 3.0
        assert sess.ready_delay == 15.0
        assert sess.buffering_delay == 12.0

    def test_failed_session_not_normal(self):
        server = log_with_session([
            (ActivityEvent.JOIN, 10.0, None),
            (ActivityEvent.LEAVE, 40.0, LeaveReason.IMPATIENCE),
        ])
        sess = SessionTable.from_log(server).sessions()[0]
        assert not sess.is_normal
        assert not sess.started_playback
        assert sess.duration == 30.0
        assert sess.ready_delay is None

    def test_abrupt_departure_has_unknown_duration(self):
        server = log_with_session([
            (ActivityEvent.JOIN, 10.0, None),
            (ActivityEvent.PLAYER_READY, 20.0, None),
        ])
        sess = SessionTable.from_log(server).sessions()[0]
        assert sess.duration is None

    def test_retry_histogram_links_by_user(self):
        server = LogServer()
        # user 1: three joins; user 2: one join
        for sid, t in ((1, 0.0), (2, 30.0), (3, 60.0)):
            log_with_session([(ActivityEvent.JOIN, t, None)],
                             user_id=1, session_id=sid, server=server)
        log_with_session([(ActivityEvent.JOIN, 0.0, None)],
                         user_id=2, session_id=10, server=server)
        hist = SessionTable.from_log(server).retry_histogram()
        assert hist == {2: 1, 0: 1}

    def test_concurrent_users_counting(self):
        server = LogServer()
        log_with_session([
            (ActivityEvent.JOIN, 10.0, None),
            (ActivityEvent.LEAVE, 50.0, LeaveReason.NORMAL),
        ], session_id=1, user_id=1, server=server)
        log_with_session([
            (ActivityEvent.JOIN, 30.0, None),
            (ActivityEvent.LEAVE, 90.0, LeaveReason.NORMAL),
        ], session_id=2, user_id=2, server=server)
        grid, counts = SessionTable.from_log(server).concurrent_users(
            t0=0.0, t1=100.0, step_s=20.0
        )
        # at t=20: 1 user; t=40: 2; t=60: 1; t=100: 0
        at = dict(zip(grid.tolist(), counts.tolist()))
        assert at[20.0] == 1
        assert at[40.0] == 2
        assert at[60.0] == 1
        assert at[100.0] == 0

    def test_session_without_leave_counts_as_present(self):
        server = log_with_session([(ActivityEvent.JOIN, 10.0, None)])
        _grid, counts = SessionTable.from_log(server).concurrent_users(
            t0=0.0, t1=100.0, step_s=50.0
        )
        assert counts[-1] == 1

    def test_ready_delays_windowed_by_join_time(self):
        server = LogServer()
        log_with_session([
            (ActivityEvent.JOIN, 10.0, None),
            (ActivityEvent.PLAYER_READY, 15.0, None),
        ], session_id=1, user_id=1, server=server)
        log_with_session([
            (ActivityEvent.JOIN, 100.0, None),
            (ActivityEvent.PLAYER_READY, 130.0, None),
        ], session_id=2, user_id=2, server=server)
        table = SessionTable.from_log(server)
        assert table.ready_delays() == [5.0, 30.0]
        assert table.ready_delays(join_after=50.0) == [30.0]
        assert table.ready_delays(join_before=50.0) == [5.0]

    def test_short_session_fraction(self):
        server = LogServer()
        for sid, dur in ((1, 30.0), (2, 300.0)):
            log_with_session([
                (ActivityEvent.JOIN, 0.0, None),
                (ActivityEvent.LEAVE, dur, LeaveReason.NORMAL),
            ], session_id=sid, user_id=sid, server=server)
        assert SessionTable.from_log(server).short_session_fraction(60.0) == 0.5

    def test_sessions_per_user_sorted_by_join(self):
        server = LogServer()
        log_with_session([(ActivityEvent.JOIN, 50.0, None)],
                         user_id=1, session_id=2, server=server)
        log_with_session([(ActivityEvent.JOIN, 10.0, None)],
                         user_id=1, session_id=1, server=server)
        by_user = SessionTable.from_log(server).sessions_per_user()
        assert [s.session_id for s in by_user[1]] == [1, 2]
