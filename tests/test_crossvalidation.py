"""Cross-validation: the two engines must agree on aggregate behaviour.

The reference engine (message-level protocol) and the fastsim engine
(vectorized fluid model) implement the same protocol semantics.  On a
matched small scenario their aggregates -- success rate, continuity,
ready-time scale, overlay composition -- must agree in *shape* (we assert
generous envelopes, not equality: the engines differ in granularity by
design)."""

import numpy as np
import pytest

from repro.analysis import SessionTable, Cdf
from repro.analysis.continuity import mean_continuity
from repro.core.config import SystemConfig
from repro.core.system import CoolstreamingSystem
from repro.fastsim import FastSimulation
from repro.workload.users import UserPopulation


HORIZON = 600.0
N_USERS = 60


def run_reference(seed=0):
    cfg = SystemConfig(n_servers=2)
    system = CoolstreamingSystem(cfg, seed=seed)
    times = np.linspace(5.0, 120.0, N_USERS)
    pop = UserPopulation(
        system, arrival_times=times, silent_leave_prob=0.0,
    )
    # long stays so both engines see the same active population
    for user in pop.users:
        user.departure_deadline = user.arrival_time + HORIZON
    pop.attach()
    system.run(until=HORIZON)
    return system.log


def run_fastsim(seed=0):
    cfg = SystemConfig(n_servers=2)
    sim = FastSimulation(cfg, seed=seed, capacity_hint=256)
    times = np.linspace(5.0, 120.0, N_USERS)
    sim.add_arrivals(times, np.full(N_USERS, HORIZON))
    sim.run(until=HORIZON)
    return sim.log


@pytest.fixture(scope="module")
def logs():
    return run_reference(), run_fastsim()


class TestCrossValidation:
    def test_both_engines_get_everyone_playing(self, logs):
        for log in logs:
            table = SessionTable.from_log(log)
            ready = [s for s in table if s.started_playback]
            assert len(ready) >= 0.9 * N_USERS

    def test_continuity_agrees(self, logs):
        ref_log, fast_log = logs
        ref = mean_continuity(ref_log, after=200.0)
        fast = mean_continuity(fast_log, after=200.0)
        assert ref > 0.9
        assert fast > 0.9
        assert abs(ref - fast) < 0.08

    def test_ready_time_scale_agrees(self, logs):
        ref_log, fast_log = logs
        ref = Cdf.from_samples(SessionTable.from_log(ref_log).ready_delays())
        fast = Cdf.from_samples(SessionTable.from_log(fast_log).ready_delays())
        # both within the seconds-to-half-minute regime of Fig. 6; the
        # engines sit at opposite ends of it (the reference engine's
        # message-level catch-up is faster than the fluid engine's
        # step-granular one), so the envelope is deliberately generous
        for cdf in (ref, fast):
            assert 2.0 < cdf.median < 35.0
        ratio = max(ref.median, fast.median) / min(ref.median, fast.median)
        assert ratio < 4.0

    def test_session_counts_agree(self, logs):
        ref_log, fast_log = logs
        n_ref = len(SessionTable.from_log(ref_log))
        n_fast = len(SessionTable.from_log(fast_log))
        # retries may differ slightly; totals must be comparable
        assert abs(n_ref - n_fast) <= 0.3 * N_USERS

    def test_log_format_identical(self, logs):
        """Both engines emit the same wire format: the analysis pipeline
        parses either without special-casing."""
        for log in logs:
            for entry in log.entries()[:50]:
                entry.parse()  # must not raise
