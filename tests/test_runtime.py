"""The engine-agnostic runtime: workload sampling, backends, driver.

The load-bearing property under test: :func:`sample_workload` draws the
audience from hub-seed-derived named streams, so the realization is
byte-identical across calls, engines and processes for one (scenario,
seed) -- and each backend consuming it is bit-reproducible run-to-run.
"""

import numpy as np
import pytest

from repro.core.system import CoolstreamingSystem
from repro.runtime import (
    ENGINES,
    DetailedBackend,
    FluidBackend,
    StreamingBackend,
    build_backend,
    run_scenario,
    sample_workload,
)
from repro.workload.scenarios import steady_audience, uniform_ramp
from repro.workload.users import UserPopulation


def small_scenario(**kw):
    """A scenario cheap enough for the detailed engine in unit tests."""
    kw.setdefault("rate_per_s", 0.3)
    kw.setdefault("horizon_s", 150.0)
    kw.setdefault("n_servers", 2)
    return steady_audience(**kw)


class TestSampleWorkload:
    def test_same_seed_is_byte_identical(self):
        scenario = small_scenario()
        w1 = sample_workload(scenario, seed=7)
        w2 = sample_workload(scenario, seed=7)
        assert w1.times.tobytes() == w2.times.tobytes()
        assert w1.durations.tobytes() == w2.durations.tobytes()
        assert w1.endings == w2.endings

    def test_different_seeds_differ(self):
        scenario = small_scenario()
        w1 = sample_workload(scenario, seed=0)
        w2 = sample_workload(scenario, seed=1)
        assert w1.times.tobytes() != w2.times.tobytes()

    def test_arrivals_sorted_and_aligned(self):
        w = sample_workload(small_scenario(), seed=3)
        assert np.all(np.diff(w.times) >= 0)
        assert w.times.shape == w.durations.shape
        assert w.n_users == w.times.size

    def test_misaligned_realization_rejected(self):
        from repro.runtime import WorkloadRealization

        with pytest.raises(ValueError):
            WorkloadRealization(
                times=np.array([1.0, 2.0]),
                durations=np.array([5.0]),
                endings=(),
            )

    def test_uniform_ramp_fixed_duration_workload(self):
        # FixedDuration consumes no RNG and UniformBurst yields exactly
        # n_users sorted arrivals inside the ramp window
        scenario = uniform_ramp(n_users=40, horizon_s=200.0, ramp_frac=0.25)
        w = sample_workload(scenario, seed=0)
        assert w.n_users == 40
        assert w.times.max() <= 0.25 * 200.0
        assert np.all(w.durations == 200.0)


class TestBuildBackend:
    def test_engine_registry(self):
        assert set(ENGINES) == {"detailed", "fast"}
        assert ENGINES["detailed"] is DetailedBackend
        assert ENGINES["fast"] is FluidBackend

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            build_backend(small_scenario(), seed=0, engine="warp")

    @pytest.mark.parametrize("engine", ["detailed", "fast"])
    def test_backends_satisfy_protocol(self, engine):
        backend = build_backend(small_scenario(), seed=0, engine=engine)
        assert isinstance(backend, StreamingBackend)
        assert backend.name == engine

    def test_both_engines_consume_identical_workload(self):
        scenario = small_scenario()
        w = sample_workload(scenario, seed=5)
        det = build_backend(scenario, seed=5, engine="detailed", workload=w)
        fast = build_backend(scenario, seed=5, engine="fast", workload=w)
        det.materialize()
        det_times = np.array([u.arrival_time for u in det.population.users])
        det_durs = np.array(
            [u.departure_deadline - u.arrival_time
             for u in det.population.users])
        fast_joins = sorted(fast.sim._pending_joins)
        fast_times = np.array([t for t, *_ in fast_joins])
        fast_durs = np.array([dep - t for t, _uid, _att, dep in fast_joins])
        assert det_times.tobytes() == w.times.tobytes()
        assert fast_times.tobytes() == w.times.tobytes()
        np.testing.assert_allclose(det_durs, w.durations)
        np.testing.assert_allclose(fast_durs, w.durations)

    def test_workload_applied_once(self):
        backend = build_backend(small_scenario(), seed=0, engine="detailed")
        with pytest.raises(RuntimeError):
            backend.apply_workload(np.array([1.0]), np.array([5.0]))


class TestRunScenario:
    @pytest.mark.parametrize("engine", ["detailed", "fast"])
    def test_run_to_run_bit_reproducible(self, engine):
        scenario = small_scenario()
        r1 = run_scenario(scenario, seed=2, engine=engine)
        r2 = run_scenario(scenario, seed=2, engine=engine)
        assert r1.log.dumps() == r2.log.dumps()
        m1, m2 = r1.metrics(), r2.metrics()
        assert set(m1) == set(m2)
        for k in m1:
            assert m1[k] == m2[k] or (m1[k] != m1[k] and m2[k] != m2[k]), k

    def test_result_carries_workload_and_engine(self):
        res = run_scenario(small_scenario(), seed=1, engine="fast")
        assert res.engine == "fast"
        assert res.seed == 1
        assert res.workload.n_users > 0
        assert res.sim is not None and res.system is None

    def test_metrics_have_uniform_keys(self):
        keys = None
        for engine in ("detailed", "fast"):
            m = run_scenario(small_scenario(), seed=0, engine=engine).metrics()
            assert m["concurrent_users"] >= 0
            assert 0.0 <= m["success_fraction"] <= 1.0
            if keys is None:
                keys = set(m)
            else:
                assert set(m) == keys

    def test_capacity_hint_does_not_change_fluid_output(self):
        scenario = small_scenario()
        r1 = run_scenario(scenario, seed=4, engine="fast", capacity_hint=256)
        r2 = run_scenario(scenario, seed=4, engine="fast", capacity_hint=4096)
        assert r1.log.dumps() == r2.log.dumps()


class TestScenarioShims:
    def test_build_returns_system_and_population(self):
        system, pop = small_scenario().build(seed=0)
        assert isinstance(system, CoolstreamingSystem)
        assert isinstance(pop, UserPopulation)

    def test_run_shim_matches_run_scenario(self):
        scenario = small_scenario()
        system, _pop = scenario.run(seed=6)
        res = run_scenario(scenario, seed=6, engine="detailed")
        assert system.log.dumps() == res.log.dumps()
