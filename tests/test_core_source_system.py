"""Tests for source, dedicated servers, bootstrap and system wiring."""

import pytest

from repro.core.node import NodeState
from repro.core.source import SOURCE_ID
from repro.core.system import CoolstreamingSystem
from repro.network.connectivity import ConnectivityClass


class TestSource:
    def test_source_heads_track_live_edge(self, small_system):
        small_system.run(until=100.0)
        heads = small_system.source.heads
        assert all(h == heads[0] for h in heads)
        assert heads[0] == pytest.approx(99, abs=1)

    def test_only_servers_may_subscribe_to_source(self, small_system):
        node = small_system.spawn_peer(user_id=0)
        before = small_system.source.scheduler.substream_degree
        small_system.source.rpc_subscribe(node.node_id, 0, 0)
        assert small_system.source.scheduler.substream_degree == before

    def test_servers_track_source(self, small_system):
        small_system.run(until=60.0)
        for server in small_system.servers:
            assert min(server.heads) >= small_system.source.heads[0] - 5

    def test_servers_never_leave(self, small_system):
        small_system.run(until=120.0)
        for server in small_system.servers:
            assert server.alive
            assert server.state is NodeState.PLAYING

    def test_server_count_matches_config(self, small_cfg):
        system = CoolstreamingSystem(small_cfg, seed=0)
        assert len(system.servers) == small_cfg.n_servers

    def test_source_not_droppable_from_server(self, small_system):
        server = small_system.servers[0]
        server._drop_partner(SOURCE_ID, notify=False)
        assert all(p == SOURCE_ID for p in server.parents)


class TestBootstrap:
    def test_registration_lifecycle(self, small_system):
        node = small_system.spawn_peer(user_id=0)
        assert small_system.bootstrap.active_count == 2 + 1  # servers + peer
        node.leave_reason = None
        from repro.telemetry.reports import LeaveReason
        node.leave(LeaveReason.NORMAL)
        assert small_system.bootstrap.active_count == 2

    def test_sample_always_contains_a_server(self, small_system):
        for u in range(10):
            small_system.spawn_peer(user_id=u)
        sample = small_system.bootstrap.sample_for(requester_id=9999)
        classes = {e.connectivity for e in sample}
        assert ConnectivityClass.SERVER in classes

    def test_sample_excludes_requester(self, small_system):
        node = small_system.spawn_peer(user_id=0)
        sample = small_system.bootstrap.sample_for(node.node_id)
        assert node.node_id not in {e.node_id for e in sample}

    def test_sample_size_bounded(self, small_system):
        for u in range(30):
            small_system.spawn_peer(user_id=u)
        sample = small_system.bootstrap.sample_for(requester_id=9999)
        assert len(sample) <= small_system.cfg.bootstrap_sample

    def test_empty_overlay_sample(self, small_cfg):
        system = CoolstreamingSystem(
            small_cfg.with_overrides(n_servers=0), seed=0
        )
        assert system.bootstrap.sample_for(1) == []

    def test_join_counter(self, small_system):
        for u in range(5):
            small_system.spawn_peer(user_id=u)
        assert small_system.bootstrap.join_count == 5


class TestSystemWiring:
    def test_rpc_reaches_destination_after_latency(self, small_system):
        node = small_system.spawn_peer(user_id=0)
        seen = []
        node.rpc_probe = lambda x: seen.append((small_system.engine.now, x))
        small_system.rpc(SOURCE_ID, node.node_id, "rpc_probe", 42)
        assert seen == []  # not synchronous
        small_system.run(until=1.0)
        assert len(seen) == 1
        assert seen[0][0] > 0.0
        assert seen[0][1] == 42

    def test_rpc_to_dead_node_dropped(self, small_system):
        from repro.telemetry.reports import LeaveReason

        node = small_system.spawn_peer(user_id=0)
        small_system.rpc(SOURCE_ID, node.node_id, "rpc_bm_update", 0, None)
        node.leave(LeaveReason.NORMAL)
        small_system.run(until=5.0)  # must not raise

    def test_rpc_unknown_method_ignored(self, small_system):
        node = small_system.spawn_peer(user_id=0)
        small_system.rpc(SOURCE_ID, node.node_id, "rpc_no_such_method")
        small_system.run(until=5.0)

    def test_peers_view_excludes_servers(self, populated_system):
        peers = populated_system.peers()
        assert all(not p.is_server for p in peers)

    def test_concurrent_users_counts_alive_peers(self, populated_system):
        assert populated_system.concurrent_users == len(
            populated_system.peers(alive_only=True)
        )

    def test_parent_child_edges_consistent(self, populated_system):
        edges = populated_system.parent_child_edges()
        for parent, child, sub in edges:
            child_node = populated_system.get_node(child)
            assert child_node.parents[sub] == parent

    def test_summary_keys(self, populated_system):
        s = populated_system.summary()
        assert set(s) >= {
            "time", "concurrent_users", "playing", "mean_continuity",
            "sessions_spawned", "log_entries",
        }

    def test_deterministic_replay(self, small_cfg):
        def run_once():
            system = CoolstreamingSystem(small_cfg, seed=77)
            for u in range(10):
                system.engine.schedule(
                    u * 2.0, lambda u=u: system.spawn_peer(user_id=u)
                )
            system.run(until=200.0)
            return system.log.dumps()

        assert run_once() == run_once()

    def test_different_seeds_differ(self, small_cfg):
        def run_once(seed):
            system = CoolstreamingSystem(small_cfg, seed=seed)
            for u in range(10):
                system.engine.schedule(
                    u * 2.0, lambda u=u: system.spawn_peer(user_id=u)
                )
            system.run(until=200.0)
            return system.log.dumps()

        assert run_once(1) != run_once(2)
