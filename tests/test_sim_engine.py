"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import Engine, PeriodicTask, SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_custom_start_time(self):
        assert Engine(start_time=50.0).now == 50.0

    def test_run_until_advances_clock_even_without_events(self):
        eng = Engine()
        eng.run(until=10.0)
        assert eng.now == 10.0

    def test_clock_moves_to_event_time(self):
        eng = Engine()
        seen = []
        eng.schedule(3.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [3.5]
        assert eng.now == 3.5


class TestScheduling:
    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            eng.schedule_at(5.0, lambda: None)

    def test_fifo_for_same_timestamp(self):
        eng = Engine()
        order = []
        for i in range(5):
            eng.schedule(1.0, lambda i=i: order.append(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(3.0, lambda: order.append("c"))
        eng.schedule(1.0, lambda: order.append("a"))
        eng.schedule(2.0, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_call_soon_runs_at_current_time(self):
        eng = Engine()
        seen = []
        eng.schedule(5.0, lambda: eng.call_soon(lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [5.0]

    def test_nested_scheduling_during_run(self):
        eng = Engine()
        seen = []

        def outer():
            eng.schedule(2.0, lambda: seen.append(eng.now))

        eng.schedule(1.0, outer)
        eng.run()
        assert seen == [3.0]

    def test_len_counts_pending(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        assert len(eng) == 2

    def test_peek_returns_next_time(self):
        eng = Engine()
        eng.schedule(7.0, lambda: None)
        eng.schedule(3.0, lambda: None)
        assert eng.peek() == 3.0

    def test_peek_empty_returns_none(self):
        assert Engine().peek() is None


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        seen = []
        ev = eng.schedule(1.0, lambda: seen.append(1))
        ev.cancel()
        eng.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        ev = eng.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        eng.run()

    def test_cancelled_events_not_counted_in_len(self):
        eng = Engine()
        ev = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        ev.cancel()
        assert len(eng) == 1

    def test_peek_skips_cancelled(self):
        eng = Engine()
        ev = eng.schedule(1.0, lambda: None)
        eng.schedule(5.0, lambda: None)
        ev.cancel()
        assert eng.peek() == 5.0

    def test_peek_counts_dropped_cancelled_events(self):
        eng = Engine()
        evs = [eng.schedule(t, lambda: None) for t in (1.0, 2.0, 3.0)]
        evs[0].cancel()
        evs[1].cancel()
        assert eng.peek() == 3.0
        assert eng.events_cancelled == 2
        # the run loop must not re-count events peek already dropped
        eng.run()
        assert eng.events_cancelled == 2
        assert eng.events_processed == 1


class TestRunControl:
    def test_until_excludes_later_events(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, lambda: seen.append("early"))
        eng.schedule(10.0, lambda: seen.append("late"))
        eng.run(until=5.0)
        assert seen == ["early"]
        assert eng.now == 5.0
        eng.run()  # the late event is still pending
        assert seen == ["early", "late"]

    def test_until_is_inclusive_of_boundary_events(self):
        eng = Engine()
        seen = []
        eng.schedule(5.0, lambda: seen.append(1))
        eng.run(until=5.0)
        assert seen == [1]

    def test_max_events_bound(self):
        eng = Engine()
        seen = []
        for i in range(10):
            eng.schedule(float(i + 1), lambda i=i: seen.append(i))
        eng.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_stop_halts_immediately(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, lambda: (seen.append(1), eng.stop()))
        eng.schedule(2.0, lambda: seen.append(2))
        eng.run(until=10.0)
        assert seen == [1]
        # clock is NOT advanced to `until` after a stop
        assert eng.now == 1.0

    def test_reentrant_run_rejected(self):
        eng = Engine()

        def bad():
            eng.run()

        eng.schedule(1.0, bad)
        with pytest.raises(SimulationError):
            eng.run()

    def test_events_processed_counter(self):
        eng = Engine()
        for i in range(4):
            eng.schedule(float(i), lambda: None)
        eng.run()
        assert eng.events_processed == 4

    def test_exception_in_callback_propagates_and_engine_reusable(self):
        eng = Engine()

        def boom():
            raise ValueError("boom")

        eng.schedule(1.0, boom)
        eng.schedule(2.0, lambda: None)
        with pytest.raises(ValueError):
            eng.run()
        # engine is not left in "running" state
        eng.run()
        assert eng.now == 2.0


class TestPeriodicTask:
    def test_fires_every_period(self):
        eng = Engine()
        times = []
        PeriodicTask(eng, 2.0, lambda: times.append(eng.now))
        eng.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_first_delay_override(self):
        eng = Engine()
        times = []
        PeriodicTask(eng, 5.0, lambda: times.append(eng.now), first_delay=1.0)
        eng.run(until=7.0)
        assert times == [1.0, 6.0]

    def test_stop_prevents_future_firings(self):
        eng = Engine()
        times = []
        task = PeriodicTask(eng, 1.0, lambda: times.append(eng.now))
        eng.schedule(2.5, task.stop)
        eng.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_stop_from_within_callback(self):
        eng = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] == 3:
                task.stop()

        task = PeriodicTask(eng, 1.0, tick)
        eng.run(until=100.0)
        assert count[0] == 3

    def test_zero_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Engine(), 0.0, lambda: None)

    def test_jitter_requires_rng(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Engine(), 1.0, lambda: None, jitter=0.5)

    def test_jitter_decorrelates_two_tasks(self, rng):
        eng = Engine()
        times_a, times_b = [], []
        PeriodicTask(eng, 10.0, lambda: times_a.append(eng.now),
                     jitter=2.0, rng=rng)
        PeriodicTask(eng, 10.0, lambda: times_b.append(eng.now),
                     jitter=2.0, rng=rng)
        eng.run(until=100.0)
        assert times_a != times_b

    def test_period_property(self):
        eng = Engine()
        task = PeriodicTask(eng, 3.5, lambda: None)
        assert task.period == 3.5


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            eng = Engine()
            trace = []
            PeriodicTask(eng, 1.5, lambda: trace.append(("a", eng.now)))
            PeriodicTask(eng, 2.5, lambda: trace.append(("b", eng.now)))
            eng.schedule(4.0, lambda: trace.append(("x", eng.now)))
            eng.run(until=20.0)
            return trace

        assert run_once() == run_once()
