"""Tests for partner-churn and resource/bottleneck analysis."""

import pytest

from repro.analysis.classification import UserType
from repro.analysis.partners import (
    churn_by_type,
    churn_rate_timeseries,
    partner_events,
    partnership_lifetimes,
)
from repro.analysis.resources import (
    SupplyDemand,
    supply_demand_snapshot,
    upload_rate_timeseries,
    utilization_by_class,
)
from repro.telemetry.reports import (
    PartnerEvent,
    PartnerOp,
    PartnerReport,
    TrafficReport,
)
from repro.telemetry.server import LogServer


def partner_report(server, node_id, events, t=300.0):
    server.receive_report(t, PartnerReport(
        time=t, node_id=node_id, user_id=node_id, session_id=node_id,
        events=tuple(events),
    ))


class TestPartnerEvents:
    def test_flattening_sorted_by_time(self):
        server = LogServer()
        partner_report(server, 1, [
            PartnerEvent(50.0, PartnerOp.ADD, 9, incoming=False),
            PartnerEvent(10.0, PartnerOp.ADD, 8, incoming=True),
        ])
        events = partner_events(server)
        assert [e[0] for e in events] == [10.0, 50.0]

    def test_lifetimes_pair_add_and_drop(self):
        server = LogServer()
        partner_report(server, 1, [
            PartnerEvent(10.0, PartnerOp.ADD, 9, incoming=False),
            PartnerEvent(70.0, PartnerOp.DROP, 9, incoming=False),
            PartnerEvent(80.0, PartnerOp.ADD, 5, incoming=False),
        ])
        lifetimes = partnership_lifetimes(server)
        assert lifetimes == [60.0]  # the open (1,5) pair is censored

    def test_lifetimes_across_reports(self):
        server = LogServer()
        partner_report(server, 1, [
            PartnerEvent(10.0, PartnerOp.ADD, 9, incoming=False),
        ], t=300.0)
        partner_report(server, 1, [
            PartnerEvent(400.0, PartnerOp.DROP, 9, incoming=False),
        ], t=600.0)
        assert partnership_lifetimes(server) == [390.0]

    def test_drop_without_add_ignored(self):
        server = LogServer()
        partner_report(server, 1, [
            PartnerEvent(10.0, PartnerOp.DROP, 9, incoming=False),
        ])
        assert partnership_lifetimes(server) == []

    def test_churn_timeseries(self):
        server = LogServer()
        partner_report(server, 1, [
            PartnerEvent(100.0, PartnerOp.ADD, 9, incoming=False),
            PartnerEvent(150.0, PartnerOp.ADD, 8, incoming=False),
            PartnerEvent(400.0, PartnerOp.DROP, 9, incoming=False),
        ])
        centers, adds, drops = churn_rate_timeseries(
            server, bin_s=300.0, t1=600.0
        )
        assert adds[0] == 2 and drops[0] == 0
        assert adds[1] == 0 and drops[1] == 1

    def test_churn_timeseries_empty_raises(self):
        with pytest.raises(ValueError):
            churn_rate_timeseries(LogServer())

    def test_churn_by_type(self):
        server = LogServer()
        partner_report(server, 1, [
            PartnerEvent(10.0, PartnerOp.DROP, 9, incoming=False),
            PartnerEvent(20.0, PartnerOp.DROP, 8, incoming=False),
        ])
        partner_report(server, 2, [])
        types = {1: UserType.NAT, 2: UserType.DIRECT}
        churn = churn_by_type(server, types)
        assert churn[UserType.NAT] == 2.0
        assert churn[UserType.DIRECT] == 0.0

    def test_end_to_end_churn_from_real_run(self, populated_system):
        events = partner_events(populated_system.log)
        assert events  # the run produced partner activity
        lifetimes = partnership_lifetimes(populated_system.log)
        assert all(l >= 0 for l in lifetimes)


class TestSupplyDemand:
    def test_ratio_and_verdicts(self):
        sd = SupplyDemand(time=0.0, demand_bps=100.0, server_supply_bps=90.0,
                          peer_supply_bps=40.0, raw_peer_supply_bps=80.0)
        assert sd.supply_bps == 130.0
        assert sd.ratio == pytest.approx(1.3)
        assert sd.bottleneck == "none"

    def test_tight_and_capacity_verdicts(self):
        tight = SupplyDemand(0.0, 100.0, 60.0, 50.0, 70.0)
        assert tight.bottleneck == "tight"
        starved = SupplyDemand(0.0, 100.0, 30.0, 20.0, 40.0)
        assert starved.bottleneck == "capacity"

    def test_idle_system_infinite_ratio(self):
        sd = SupplyDemand(0.0, 0.0, 10.0, 0.0, 0.0)
        assert sd.ratio == float("inf")

    def test_snapshot_from_live_system(self, populated_system):
        sd = supply_demand_snapshot(populated_system)
        assert sd.demand_bps == (
            populated_system.concurrent_users
            * populated_system.cfg.stream_rate_bps
        )
        assert sd.server_supply_bps == sum(
            s.upload_bps for s in populated_system.servers
        )
        assert 0.0 < sd.peer_supply_bps <= sd.raw_peer_supply_bps

    def test_utilization_shares_sum_to_one(self, populated_system):
        util = utilization_by_class(populated_system)
        total_share = sum(share for _bits, share in util.values())
        assert total_share == pytest.approx(1.0)

    def test_servers_carry_most_bits_in_small_system(self, populated_system):
        from repro.network.connectivity import ConnectivityClass

        util = utilization_by_class(populated_system)
        server_share = util.get(ConnectivityClass.SERVER, (0.0, 0.0))[1]
        assert server_share > 0.2


class TestUploadRateTimeseries:
    def test_rates_from_traffic_reports(self):
        server = LogServer()
        for node, t, up in ((1, 310.0, 600.0), (2, 320.0, 900.0)):
            server.receive_report(t, TrafficReport(
                time=t, node_id=node, user_id=node, session_id=node,
                bytes_up=up, bytes_down=0.0, total_up=up, total_down=0.0,
            ))
        centers, rates = upload_rate_timeseries(server, bin_s=300.0, t1=600.0)
        assert rates[1] == pytest.approx((600.0 + 900.0) / 300.0)

    def test_empty_log_raises(self):
        with pytest.raises(ValueError):
            upload_rate_timeseries(LogServer())
