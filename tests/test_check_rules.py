"""Per-rule behaviour of the repro.check determinism lint.

Each rule ships three fixtures under ``tests/check_fixtures/``:
``<rule>_violations.py`` (every construct flagged), ``<rule>_suppressed.py``
(same constructs silenced with ``# repro: noqa[RULE]``), and
``<rule>_clean.py`` (the disciplined way to write the same thing).
Fixtures are checked under a virtual ``src/repro/...`` path so the
path-scoped rules (DET002 allowlist, FLT001 test exemption) behave as
they do on the real tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.check import check_source

FIXTURES = Path(__file__).parent / "check_fixtures"

#: virtual location fixtures are checked "at" (inside the scanned tree,
#: outside every allowlist)
VIRTUAL = "src/repro/fixture_under_check.py"

RULES = ["DET001", "DET002", "DET003", "FLT001", "CFG001",
         "ASY001", "ASY002", "ASY003", "SCH001", "SCH002", "UNIT001",
         "OBS001"]

#: how many findings the violations fixture of each rule must produce
EXPECTED_VIOLATIONS = {
    "DET001": 6,   # random.random/randint/choice/seed, np.normal, npr.rand
    "DET002": 4,   # time.time, monotonic, perf_counter, datetime.now
    "DET003": 5,   # for-set, list(set), comprehension, choice, shuffle
    "FLT001": 3,   # ==, !=, reversed ==
    "CFG001": 1,   # window_s unvalidated
    "ASY001": 4,   # time.sleep, open, create_connection, subprocess.run
    "ASY002": 2,   # bare coroutine call, bare async-method call
    "ASY003": 2,   # loop.create_task, asyncio.ensure_future
    "SCH001": 4,   # twin drift, unknown attr, unread wire key x2
    "SCH002": 1,   # "hopc" emitted, never parsed back
    "UNIT001": 5,  # blocks+s, s-blocks, kbps+bps, ms+=s, attr s+blocks
    "OBS001": 2,   # .get() miss + membership-probe miss
}


def check_fixture(name: str, path: str = VIRTUAL):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return check_source(source, path=path)


@pytest.mark.parametrize("rule", RULES)
def test_violations_fixture_is_fully_flagged(rule):
    findings = check_fixture(f"{rule.lower()}_violations.py")
    assert len(findings) == EXPECTED_VIOLATIONS[rule]
    assert all(f.rule == rule for f in findings)
    # structured finding shape: location + actionable message
    for f in findings:
        assert f.line > 0 and f.col >= 0
        assert f.message


@pytest.mark.parametrize("rule", RULES)
def test_suppressed_fixture_is_silent(rule):
    assert check_fixture(f"{rule.lower()}_suppressed.py") == []


@pytest.mark.parametrize("rule", RULES)
def test_clean_fixture_is_silent(rule):
    assert check_fixture(f"{rule.lower()}_clean.py") == []


# --- path-scoped rules ----------------------------------------------------

def test_det002_allowlists_obs_and_telemetry_paths():
    for allowed in ("src/repro/obs/clock.py", "src/repro/telemetry/x.py"):
        assert check_fixture("det002_violations.py", path=allowed) == []


def test_flt001_exempts_test_files():
    assert check_fixture("flt001_violations.py",
                         path="tests/test_something.py") == []
    assert check_fixture("flt001_violations.py",
                         path="benchmarks/bench_x.py") == []


# --- rule-specific edges --------------------------------------------------

def test_det001_ignores_local_variables_named_random():
    src = "def f(random):\n    return random.random()\n"
    assert check_source(src, path=VIRTUAL) == []


def test_det001_flags_aliased_numpy_import():
    src = "import numpy as xp\n\ndef f():\n    return xp.random.rand()\n"
    findings = check_source(src, path=VIRTUAL)
    assert [f.rule for f in findings] == ["DET001"]


def test_det002_resolves_from_import_alias():
    src = ("from time import perf_counter as clock\n"
           "def f():\n    return clock()\n")
    findings = check_source(src, path=VIRTUAL)
    assert [f.rule for f in findings] == ["DET002"]


def test_det003_sorted_wrapping_is_clean():
    src = ("def f(xs, rng):\n"
           "    for x in sorted(set(xs)):\n"
           "        rng.choice(sorted({1, 2}))\n")
    assert check_source(src, path=VIRTUAL) == []


def test_cfg001_requires_post_init_and_validating_siblings():
    # no __post_init__: nothing to compare against
    src_no_post = ("from dataclasses import dataclass\n"
                   "@dataclass\nclass AConfig:\n    x: float = 1.0\n")
    assert check_source(src_no_post, path=VIRTUAL) == []
    # __post_init__ validates nothing: out of scope (no sibling precedent)
    src_no_sib = ("from dataclasses import dataclass\n"
                  "@dataclass\nclass BConfig:\n"
                  "    x: float = 1.0\n    y: float = 2.0\n"
                  "    def __post_init__(self):\n        pass\n")
    assert check_source(src_no_sib, path=VIRTUAL) == []
    # non-Config dataclasses are out of scope
    src_not_cfg = ("from dataclasses import dataclass\n"
                   "@dataclass\nclass Point:\n"
                   "    x: float = 1.0\n    y: float = 2.0\n"
                   "    def __post_init__(self):\n"
                   "        assert self.x > 0\n")
    assert check_source(src_not_cfg, path=VIRTUAL) == []


def test_cfg001_cross_field_checks_validate_both_operands():
    src = ("from dataclasses import dataclass\n"
           "@dataclass\nclass CConfig:\n"
           "    lo: float = 1.0\n    hi: float = 2.0\n"
           "    def __post_init__(self):\n"
           "        if self.lo > self.hi:\n"
           "            raise ValueError('lo > hi')\n")
    assert check_source(src, path=VIRTUAL) == []


def test_repro_tree_is_clean():
    """The shipped tree must stay lint-clean (acceptance criterion)."""
    from repro.check import check_paths

    src_root = Path(__file__).parent.parent / "src"
    report = check_paths([str(src_root)])
    assert report.errors == []
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings)


def test_repro_tree_with_tests_is_clean():
    """The project pass over src *and* tests stays clean (CI gate)."""
    from repro.check import check_paths

    root = Path(__file__).parent.parent
    report = check_paths([str(root / "src"), str(root / "tests")])
    assert report.errors == []
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings)


def test_fixture_directory_is_skipped_by_directory_expansion():
    """Expanding tests/ never picks up the deliberate-violation fixtures."""
    from repro.check.engine import iter_python_files

    files = iter_python_files([str(Path(__file__).parent)])
    assert files, "expected test files"
    assert not any("check_fixtures" in str(f) for f in files)
