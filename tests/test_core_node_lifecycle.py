"""Integration tests of the peer-node lifecycle on a real system."""

import pytest

from repro.core.node import NodeState, SessionOutcome
from repro.core.system import CoolstreamingSystem
from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    LeaveReason,
    QoSReport,
)


class TestJoinPipeline:
    def test_single_peer_reaches_playing(self, small_system):
        node = None

        def spawn():
            nonlocal node
            node = small_system.spawn_peer(user_id=0)

        small_system.engine.schedule(5.0, spawn)
        small_system.run(until=120.0)
        assert node.state is NodeState.PLAYING
        assert node.player_ready_at is not None
        assert node.start_subscription_at is not None

    def test_event_ordering(self, small_system):
        node = None

        def spawn():
            nonlocal node
            node = small_system.spawn_peer(user_id=0)

        small_system.engine.schedule(5.0, spawn)
        small_system.run(until=120.0)
        assert node.joined_at < node.start_subscription_at
        assert node.start_subscription_at <= node.player_ready_at

    def test_player_ready_respects_buffer_threshold(self, small_system):
        node = None

        def spawn():
            nonlocal node
            node = small_system.spawn_peer(user_id=0)

        small_system.engine.schedule(5.0, spawn)
        small_system.run(until=120.0)
        # at ready time the combined buffer held >= player_buffer_s seconds
        assert min(node.heads) + 1 - node.start_index >= (
            small_system.cfg.player_buffer_s
        )

    def test_offset_follows_tp_rule(self, small_system):
        """Section IV.A: start from (max partner head) - T_p."""
        node = None

        def spawn():
            nonlocal node
            node = small_system.spawn_peer(user_id=0)

        small_system.engine.schedule(60.0, spawn)  # stream is 60 s old
        small_system.run(until=90.0)
        edge = small_system.source.heads[0]
        # the offset is near edge - T_p (within a few seconds of control lag)
        assert node.start_index == pytest.approx(
            edge - (small_system.engine.now - 60.0) - small_system.cfg.tp_seconds,
            abs=6.0,
        )

    def test_node_gets_partners_before_parents(self, small_system):
        node = None

        def spawn():
            nonlocal node
            node = small_system.spawn_peer(user_id=0)

        small_system.engine.schedule(5.0, spawn)
        small_system.run(until=120.0)
        assert len(node.partners) >= 1
        parents = {p for p in node.parents if p is not None}
        assert parents  # someone feeds us
        assert parents <= set(node.partners.ids())  # parents are partners


class TestLeave:
    def test_graceful_leave_reports_and_clears(self, small_system):
        node = None

        def spawn():
            nonlocal node
            node = small_system.spawn_peer(user_id=0)

        small_system.engine.schedule(5.0, spawn)
        small_system.engine.schedule(100.0, lambda: node.leave(LeaveReason.NORMAL))
        small_system.run(until=150.0)
        assert node.state is NodeState.LEFT
        assert node.outcome is SessionOutcome.NORMAL
        events = [
            r.event for r in small_system.log.reports_of(ActivityReport)
            if r.node_id == node.node_id
        ]
        assert events[-1] is ActivityEvent.LEAVE

    def test_silent_leave_sends_no_leave_report(self, small_system):
        node = None

        def spawn():
            nonlocal node
            node = small_system.spawn_peer(user_id=0)

        small_system.engine.schedule(5.0, spawn)
        small_system.engine.schedule(
            100.0, lambda: node.leave(LeaveReason.FAILURE, silent=True)
        )
        small_system.run(until=400.0)
        events = [
            r.event for r in small_system.log.reports_of(ActivityReport)
            if r.node_id == node.node_id
        ]
        assert ActivityEvent.LEAVE not in events

    def test_leave_is_idempotent(self, small_system):
        node = None

        def spawn():
            nonlocal node
            node = small_system.spawn_peer(user_id=0)

        small_system.engine.schedule(5.0, spawn)
        small_system.run(until=60.0)
        node.leave(LeaveReason.NORMAL)
        node.leave(LeaveReason.FAILURE)  # ignored
        assert node.outcome is SessionOutcome.NORMAL

    def test_session_end_hook_fires_once(self, small_system):
        calls = []
        node = None

        def spawn():
            nonlocal node
            node = small_system.spawn_peer(user_id=0)
            node.on_session_end = calls.append

        small_system.engine.schedule(5.0, spawn)
        small_system.engine.schedule(60.0, lambda: node.leave(LeaveReason.NORMAL))
        small_system.run(until=100.0)
        assert calls == [node]


class TestChurnRecovery:
    def test_children_survive_parent_departure(self, small_cfg):
        """When a parent leaves gracefully, its children re-select within
        a few control periods and keep playing."""
        system = CoolstreamingSystem(small_cfg, seed=11)
        nodes = []
        for u in range(12):
            system.engine.schedule(
                u * 1.0, lambda u=u: nodes.append(system.spawn_peer(user_id=u))
            )
        system.run(until=90.0)
        # kill every peer that currently parents someone (not servers)
        parents_now = {
            parent for parent, _c, _s in system.parent_child_edges()
            if parent >= 1000
        }
        for pid in parents_now:
            system.get_node(pid).leave(LeaveReason.FAILURE, silent=True)
        system.run(until=240.0)
        survivors = [n for n in nodes if n.alive]
        assert survivors
        playing = [n for n in survivors if n.state is NodeState.PLAYING]
        assert len(playing) >= 0.8 * len(survivors)
        # their parents are all alive again
        for n in playing:
            for p in n.parents:
                if p is not None:
                    assert system.get_node(p).alive

    def test_impatience_triggers_leave(self, small_cfg):
        """A peer that cannot find the stream gives up within patience."""
        # no servers -> nothing to stream from
        system = CoolstreamingSystem(
            small_cfg.with_overrides(n_servers=0), seed=1, start_servers=True
        )
        node = system.spawn_peer(user_id=0)
        system.run(until=small_cfg.join_patience_s + 30.0)
        assert node.state is NodeState.LEFT
        assert node.outcome is SessionOutcome.IMPATIENT


class TestTelemetryFromNode:
    def test_status_reports_every_five_minutes(self, small_system):
        node = None

        def spawn():
            nonlocal node
            node = small_system.spawn_peer(user_id=0)

        small_system.engine.schedule(0.0, spawn)
        small_system.run(until=650.0)
        qos = [
            r for r in small_system.log.reports_of(QoSReport)
            if r.node_id == node.node_id
        ]
        assert len(qos) == 2  # t ~ 300 and ~ 600

    def test_qos_report_carries_continuity_once_playing(self, small_system):
        node = None

        def spawn():
            nonlocal node
            node = small_system.spawn_peer(user_id=0)

        small_system.engine.schedule(0.0, spawn)
        small_system.run(until=350.0)
        qos = [
            r for r in small_system.log.reports_of(QoSReport)
            if r.node_id == node.node_id
        ]
        assert qos[0].playing
        assert qos[0].continuity is not None
        assert qos[0].continuity > 0.9

    def test_traffic_reports_balance(self, populated_system):
        """Total bytes uploaded across peers+servers ~ total downloaded."""
        from repro.telemetry.reports import TrafficReport

        down = sum(
            r.bytes_down for r in populated_system.log.reports_of(TrafficReport)
        )
        assert down > 0
        # peers download from servers, so peer-side up < down
        up = sum(
            r.bytes_up for r in populated_system.log.reports_of(TrafficReport)
        )
        assert up <= down * 1.01
