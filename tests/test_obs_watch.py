"""The live metrics-feed viewer (``python -m repro watch``)."""

from __future__ import annotations

import io
import json
import threading
import time
from pathlib import Path

from repro.obs.watch import (
    Snapshot,
    follow_feed,
    iter_feed,
    main,
    render_snapshot,
    watch_once,
)


def _line(t_wall, t_sim, metrics) -> str:
    return json.dumps({"t_wall": t_wall, "t_sim": t_sim,
                       "metrics": metrics}) + "\n"


RUN_METRICS = {"engine.events_executed": 12_000, "run.live_peers": 77,
               "run.mean_continuity": 0.95, "run.peak_rss_mb": 120.0}
CAMPAIGN_METRICS = {"campaign.runs_total": 8, "campaign.runs_done": 3,
                    "campaign.runs_failed": 1, "campaign.runs_cached": 2,
                    "campaign.runs_in_flight": 2, "run.peak_rss_mb": 64.0}


class TestRendering:
    def test_run_snapshot_totals(self):
        snap = Snapshot.from_line(_line(10.0, 300.0, RUN_METRICS))
        text = render_snapshot(snap)
        assert "sim=300.0s" in text
        assert "events=12 000" in text
        assert "peers=77" in text
        assert "continuity=0.950" in text
        assert "rss=120MB" in text
        assert "finished" not in text

    def test_run_snapshot_rate_from_previous(self):
        prev = Snapshot.from_line(_line(10.0, 300.0,
                                        {"engine.events_executed": 2_000}))
        snap = Snapshot.from_line(_line(12.0, 330.0, RUN_METRICS))
        assert "events/s=5 000" in render_snapshot(snap, prev)

    def test_fastsim_feed_uses_steps(self):
        snap = Snapshot.from_line(_line(10.0, 60.0, {"fastsim.steps": 240}))
        assert "steps=240" in render_snapshot(snap)

    def test_campaign_snapshot(self):
        snap = Snapshot.from_line(_line(10.0, None, CAMPAIGN_METRICS))
        text = render_snapshot(snap)
        assert "campaign 3/8 done" in text
        assert "(1 failed, 2 cached, 2 running)" in text
        assert snap.is_final and "finished" in text

    def test_unrecognised_metrics_still_render(self):
        # a metric-free final snapshot still produces a line
        snap = Snapshot.from_line(_line(1.0, None, {"something.else": 1}))
        assert render_snapshot(snap) == "[watch] (run finished)"


class TestOnce:
    def test_renders_latest_snapshot(self, tmp_path):
        feed = tmp_path / "m.jsonl"
        feed.write_text(
            _line(10.0, 100.0, {"engine.events_executed": 1_000})
            + _line(12.0, 200.0, RUN_METRICS))
        out = io.StringIO()
        assert watch_once(feed, stream=out) == 0
        text = out.getvalue()
        assert "sim=200.0s" in text
        assert "events/s=5 500" in text  # (12000-1000)/(12-10)

    def test_empty_feed_is_an_error(self, tmp_path):
        feed = tmp_path / "m.jsonl"
        feed.write_text("")
        assert watch_once(feed, stream=io.StringIO()) == 1

    def test_malformed_lines_skipped(self, tmp_path):
        feed = tmp_path / "m.jsonl"
        feed.write_text("not json\n" + _line(1.0, 50.0, RUN_METRICS)
                        + "{\"truncated\": ")
        assert [s.t_sim for s in iter_feed(feed)] == [50.0]
        assert watch_once(feed, stream=io.StringIO()) == 0


class TestFollow:
    def test_follows_until_final_snapshot(self, tmp_path):
        feed = tmp_path / "m.jsonl"
        feed.write_text(_line(1.0, 10.0, RUN_METRICS))

        def appender():
            time.sleep(0.05)
            with open(feed, "a") as fh:
                fh.write(_line(2.0, 20.0, RUN_METRICS))
                fh.write(_line(3.0, None, RUN_METRICS))

        t = threading.Thread(target=appender)
        t.start()
        out = io.StringIO()
        rc = follow_feed(feed, interval_s=0.02, timeout_s=5.0, stream=out)
        t.join()
        assert rc == 0
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert "finished" in lines[-1]

    def test_missing_feed_times_out(self, tmp_path):
        rc = follow_feed(tmp_path / "never.jsonl", interval_s=0.01,
                         timeout_s=0.05, stream=io.StringIO())
        assert rc == 1

    def test_stalled_feed_times_out(self, tmp_path):
        feed = tmp_path / "m.jsonl"
        feed.write_text(_line(1.0, 10.0, RUN_METRICS))  # never finalised
        rc = follow_feed(feed, interval_s=0.01, timeout_s=0.05,
                         stream=io.StringIO())
        assert rc == 1

    def test_partial_line_not_consumed_early(self, tmp_path):
        feed = tmp_path / "m.jsonl"
        full = _line(2.0, None, RUN_METRICS)
        feed.write_text(full[: len(full) // 2])

        def complete():
            time.sleep(0.05)
            with open(feed, "a") as fh:
                fh.write(full[len(full) // 2:])

        t = threading.Thread(target=complete)
        t.start()
        out = io.StringIO()
        rc = follow_feed(feed, interval_s=0.02, timeout_s=5.0, stream=out)
        t.join()
        assert rc == 0
        assert out.getvalue().count("[watch]") == 1


class TestCli:
    def test_once_exit_codes(self, tmp_path, capsys):
        feed = tmp_path / "m.jsonl"
        feed.write_text(_line(5.0, 42.0, RUN_METRICS))
        assert main([str(feed), "--once"]) == 0
        assert "sim=42.0s" in capsys.readouterr().out

    def test_usage_errors_exit_2(self, tmp_path):
        assert main([str(tmp_path / "m.jsonl"), "--interval", "0"]) == 2
        assert main([]) == 2  # argparse: missing feed

    def test_missing_feed_exits_1(self, tmp_path):
        assert main([str(tmp_path / "m.jsonl"), "--once"]) == 1
        assert main([str(tmp_path / "m.jsonl"), "--timeout", "0.05",
                     "--interval", "0.01"]) == 1

    def test_repro_cli_dispatch(self, tmp_path, capsys):
        from repro.experiments.cli import main as repro_main

        feed = tmp_path / "m.jsonl"
        feed.write_text(_line(5.0, 42.0, RUN_METRICS))
        assert repro_main(["watch", str(feed), "--once"]) == 0
        assert "sim=42.0s" in capsys.readouterr().out

    def test_listed_in_repro_list(self, capsys):
        from repro.experiments.cli import main as repro_main

        assert repro_main(["list"]) == 0
        assert "watch" in capsys.readouterr().out.split()


class TestEndToEnd:
    def test_real_run_feed_renders(self, tmp_path, capsys):
        """A real observed run produces a feed the watcher understands."""
        from repro.experiments.cli import main as repro_main

        feed = tmp_path / "m.jsonl"
        assert repro_main(["model", "--quiet",
                           "--metrics-out", str(feed)]) == 0
        assert main([str(feed), "--once"]) == 0
        out = capsys.readouterr().out
        assert "[watch]" in out
        assert "rss=" in out
        assert "finished" in out

    def test_final_snapshot_samples_gauge_providers(self, tmp_path):
        """run.live_peers / run.peak_rss_mb reach the feed via providers."""
        import repro.obs as obs
        from repro.core.config import SystemConfig
        from repro.core.system import CoolstreamingSystem

        feed = tmp_path / "m.jsonl"
        with obs.session(metrics_path=str(feed)):
            system = CoolstreamingSystem(
                SystemConfig(n_servers=2, server_max_partners=16), seed=5)
            for u in range(4):
                system.engine.schedule(
                    u * 2.0, lambda u=u: system.spawn_peer(user_id=u))
            system.run(until=120.0)
        last = json.loads(Path(feed).read_text().strip().splitlines()[-1])
        assert last["metrics"]["run.live_peers"] >= 1
        assert last["metrics"]["run.peak_rss_mb"] > 0
