"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.system import CoolstreamingSystem


@pytest.fixture
def rng():
    """A seeded generator for tests that need raw randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_cfg():
    """A configuration sized for fast protocol tests."""
    return SystemConfig(n_servers=2, server_max_partners=16)


@pytest.fixture
def small_system(small_cfg):
    """A running system with two servers and no peers yet."""
    return CoolstreamingSystem(small_cfg, seed=99)


def spawn_and_run(system, n_peers: int, spacing_s: float, until: float):
    """Spawn ``n_peers`` users ``spacing_s`` apart and run to ``until``."""
    for u in range(n_peers):
        system.engine.schedule(
            u * spacing_s, lambda u=u: system.spawn_peer(user_id=u)
        )
    system.run(until=until)
    return system


@pytest.fixture
def populated_system(small_system):
    """A small system after 15 peers streamed past their first 5-minute
    status report."""
    return spawn_and_run(small_system, n_peers=15, spacing_s=2.0, until=400.0)
