"""Fixture: OBS001 positives -- metric names with no emit site."""


class Registry:
    def __init__(self):
        self.metrics = {}

    def counter(self, name):
        self.metrics.setdefault(name, 0)


def instrument(reg: Registry):
    reg.counter("fixture.blocks_served")


def render(snapshot):
    served = snapshot.get("fixture.blocks_served")
    missed = snapshot.get("fixture.blocks_missed")
    stalled = "fixture.stalls_total" in snapshot
    return served, missed, stalled
