"""Fixture: SCH002-clean -- every emitted field has a consumer."""
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class EchoReport:
    time: float
    rtt: float

    def to_params(self) -> Dict[str, str]:
        return {"t": f"{self.time:.3f}", "rtt": f"{self.rtt:.4f}"}

    @classmethod
    def from_params(cls, p: Dict[str, str]) -> "EchoReport":
        return cls(time=float(p["t"]), rtt=float(p["rtt"]))
