"""Fixture: SCH002 occurrence silenced with a per-line suppression."""
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ProbeReport:
    time: float
    probe_id: int

    def to_params(self) -> Dict[str, str]:
        return {
            "t": f"{self.time:.3f}",
            "probe": str(self.probe_id),  # repro: noqa[SCH002] future use
        }

    @classmethod
    def from_params(cls, p: Dict[str, str]) -> "ProbeReport":
        return cls(time=float(p["t"]), probe_id=0)
