"""Fixture: FLT001 occurrence silenced with a per-line suppression."""


def compare(x):
    return x == 0.0  # repro: noqa[FLT001] fixture: exact zero intentional
