"""Fixture: DET003 occurrence silenced with a per-line suppression."""


def unordered(xs):
    return list(set(xs))  # repro: noqa[DET003] fixture: order irrelevant here
