"""Fixture: SCH001 positives -- telemetry reads nothing ever emits.

Self-contained producer/consumer pair: a report class whose
``to_params`` / ``to_log_string`` twins drifted, a ``from_params``
reading a wire key nothing writes, and a fold reading attributes the
report never carries on the wire (or at all).
"""
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ChunkReport:
    time: float
    chunk_rate: float
    lag: float
    drops: int

    def to_params(self) -> Dict[str, str]:
        return {
            "t": f"{self.time:.3f}",
            "cr": f"{self.chunk_rate:.3f}",
            "lag": f"{self.lag:.3f}",
        }

    def to_log_string(self) -> str:
        # twin drift: "lag" is in to_params but missing here
        return f"/log?t={self.time:.3f}&cr={self.chunk_rate:.3f}"

    @classmethod
    def from_params(cls, p: Dict[str, str]) -> "ChunkReport":
        return cls(
            time=float(p["t"]),
            chunk_rate=float(p["cr"]),
            lag=float(p.get("lag", "0")),
            drops=int(p.get("dr", "0")),
        )


class ChunkRateFold:
    def __init__(self):
        self.acc = 0.0
        self.stalls = 0

    def update(self, report):
        self.acc += report.chunk_rate
        self.acc += report.drops
        self.stalls += report.stall_count

    def result(self):
        return self.acc, self.stalls
