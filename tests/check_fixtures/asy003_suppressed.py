"""Fixture: ASY003 occurrences silenced with per-line suppressions."""
import asyncio


async def heartbeat():
    await asyncio.sleep(0)


def schedule(loop):
    loop.create_task(heartbeat())  # repro: noqa[ASY003] fixture: demo
