"""Fixture: ASY003 positives -- task references dropped at creation."""
import asyncio


async def heartbeat():
    await asyncio.sleep(0)


def schedule(loop):
    loop.create_task(heartbeat())
    asyncio.ensure_future(heartbeat())
