"""Fixture: SCH001-clean -- producer and consumer agree on the wire."""
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class TickReport:
    time: float
    ticks: int

    def to_params(self) -> Dict[str, str]:
        return {"t": f"{self.time:.3f}", "tk": str(self.ticks)}

    def to_log_string(self) -> str:
        return f"/log?t={self.time:.3f}&tk={self.ticks}"

    @classmethod
    def from_params(cls, p: Dict[str, str]) -> "TickReport":
        return cls(time=float(p["t"]), ticks=int(p.get("tk", "0")))


class TickFold:
    def __init__(self):
        self.total = 0

    def update(self, report):
        self.total += report.ticks

    def result(self):
        return self.total
