"""Fixture: ASY003-clean -- every spawned task keeps a reference."""
import asyncio


async def heartbeat():
    await asyncio.sleep(0)


_TASKS = set()


def schedule(loop):
    task = loop.create_task(heartbeat())
    _TASKS.add(task)
    task.add_done_callback(_TASKS.discard)
    return task


async def scoped():
    await asyncio.gather(asyncio.ensure_future(heartbeat()))
