"""Fixture: ASY002-clean -- every coroutine awaited or scheduled."""
import asyncio


async def rebalance_parents():
    await asyncio.sleep(0)


async def main():
    await rebalance_parents()
    task = asyncio.get_event_loop().create_task(rebalance_parents())
    await task


class Mixed:
    # same method name defined both sync and async elsewhere in the
    # project makes a bare .close() call ambiguous: never flagged
    async def close(self):
        await asyncio.sleep(0)


class SyncTwin:
    def close(self):
        pass


def shutdown(conn):
    conn.close()
