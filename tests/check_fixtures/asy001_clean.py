"""Fixture: ASY001-clean -- async code that never blocks the loop."""
import asyncio
import time


async def pump_blocks():
    await asyncio.sleep(0.5)

    def sync_helper():
        # deferred work: a nested sync function may block when *it* is
        # called, which is the call site's problem, not this coroutine's
        time.sleep(0.01)

    return sync_helper


def plain_sync_reader(path):
    with open(path) as fh:
        return fh.read()
