"""Fixture: UNIT001 positives -- additive arithmetic across units."""


def advance(buffer_blocks, horizon_s, rate_kbps, budget_bps):
    total = buffer_blocks + horizon_s
    drift = horizon_s - buffer_blocks
    mixed_rate = rate_kbps + budget_bps
    acc_ms = 0.0
    acc_ms += horizon_s
    return total, drift, mixed_rate, acc_ms


class Window:
    def __init__(self):
        self.span_s = 0.0
        self.depth_blocks = 0

    def widen(self):
        return self.span_s + self.depth_blocks
