"""Fixture: DET003-clean -- orders pinned before use."""


def ordered(xs, rng):
    ids = sorted(set(xs))
    for x in sorted({3, 1, 2}):
        print(x)
    return rng.choice(ids)
