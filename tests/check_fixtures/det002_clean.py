"""Fixture: DET002-clean -- simulated time only."""


def advance(now_s, dt_s):
    return now_s + dt_s
