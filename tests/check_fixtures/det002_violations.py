"""Fixture: DET002 positives -- wall-clock reads in simulation code."""
import time
from datetime import datetime
from time import perf_counter


def stamp():
    a = time.time()
    b = time.monotonic()
    c = perf_counter()
    d = datetime.now()
    return a, b, c, d
