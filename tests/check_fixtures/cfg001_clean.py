"""Fixture: CFG001-clean -- every numeric field validated."""
from dataclasses import dataclass


@dataclass(frozen=True)
class DemoConfig:
    rate: float = 1.0
    window_s: float = 5.0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
