"""Fixture: DET001 occurrences silenced with per-line suppressions."""
import random

import numpy as np


def draw():
    a = random.random()  # repro: noqa[DET001] fixture: demo suppression
    b = np.random.normal()  # repro: noqa[DET001] fixture: demo suppression
    return a, b
