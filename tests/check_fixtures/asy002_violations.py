"""Fixture: ASY002 positives -- coroutines called, never awaited."""
import asyncio


async def refresh_partner_list():
    await asyncio.sleep(0)


class BlockFetcher:
    async def fetch_missing_blocks(self):
        await asyncio.sleep(0)


def run_once(fetcher):
    refresh_partner_list()
    fetcher.fetch_missing_blocks()
