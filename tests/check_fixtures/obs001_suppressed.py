"""Fixture: OBS001 occurrence silenced with a per-line suppression."""


def instrument(reg):
    reg.counter("fixture.frames_decoded")


def render(snapshot):
    decoded = snapshot.get("fixture.frames_decoded")
    # emitted by an optional plugin, not visible to the checker
    dropped = snapshot.get("fixture.frames_dropped")  # repro: noqa[OBS001]
    return decoded, dropped
