"""Fixture: FLT001 positives -- exact float equality."""


def compare(x, y):
    a = x == 1.0
    b = y != 0.5
    c = -2.5 == x
    return a, b, c
