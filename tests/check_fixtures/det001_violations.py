"""Fixture: DET001 positives -- global RNG draws (every call flagged)."""
import random

import numpy as np
import numpy.random as npr
from random import choice


def draw():
    a = random.random()
    b = random.randint(1, 6)
    c = choice([1, 2, 3])
    random.seed(0)
    d = np.random.normal(size=4)
    e = npr.rand(3)
    return a, b, c, d, e
