"""Fixture: OBS001-clean -- every referenced metric has an emit site."""


def instrument(reg, kind):
    reg.counter("fixture.peers_joined")
    reg.inc(f"fixture.leave_reason.{kind}")


def render(snapshot):
    joined = snapshot.get("fixture.peers_joined")
    # dynamic family: matched by the harvested f-string prefix
    failures = snapshot.get("fixture.leave_reason.failure")
    return joined, failures
