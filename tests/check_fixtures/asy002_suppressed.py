"""Fixture: ASY002 occurrences silenced with per-line suppressions."""
import asyncio


async def warm_partner_cache():
    await asyncio.sleep(0)


def run_once():
    warm_partner_cache()  # repro: noqa[ASY002] fixture: demo suppression
