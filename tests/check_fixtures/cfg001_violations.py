"""Fixture: CFG001 positive -- one validated field, one ignored."""
from dataclasses import dataclass


@dataclass(frozen=True)
class DemoConfig:
    rate: float = 1.0
    window_s: float = 5.0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("rate must be positive")
