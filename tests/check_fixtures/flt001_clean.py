"""Fixture: FLT001-clean -- tolerances and integer comparisons."""
import math


def compare(x, y):
    a = math.isclose(x, 1.0)
    b = x == 1          # int literal: fine
    c = abs(y - 0.5) < 1e-9
    return a, b, c
