"""Fixture: DET002 occurrences silenced with per-line suppressions."""
import time


def stamp():
    return time.time()  # repro: noqa[DET002] fixture: instrumentation only
