"""Fixture: CFG001 occurrence silenced with a per-line suppression."""
from dataclasses import dataclass


@dataclass(frozen=True)
class DemoConfig:
    rate: float = 1.0
    window_s: float = 5.0  # repro: noqa[CFG001] fixture: any float is valid

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("rate must be positive")
