"""Fixture: UNIT001 occurrences silenced with per-line suppressions."""


def advance(buffer_blocks, horizon_s):
    # blocks happen to be 1s long in this scenario
    total = buffer_blocks + horizon_s  # repro: noqa[UNIT001]
    return total
