"""Fixture: DET003 positives -- hash-ordered iteration."""


def unordered(xs, rng):
    for x in {1, 2, 3}:
        print(x)
    ids = list(set(xs))
    pairs = [y for y in set(xs)]
    pick = rng.choice(set(xs))
    also = rng.shuffle(frozenset(xs))
    return ids, pairs, pick, also
