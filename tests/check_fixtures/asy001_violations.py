"""Fixture: ASY001 positives -- blocking calls inside async defs."""
import socket
import subprocess
import time


async def pump_blocks():
    time.sleep(0.5)
    data = open("/tmp/fixture.dat").read()
    return data


async def dial_coordinator(host, port):
    sock = socket.create_connection((host, port))
    subprocess.run(["true"])
    return sock
