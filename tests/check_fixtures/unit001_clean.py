"""Fixture: UNIT001-clean -- unit-consistent arithmetic only."""

BLOCK_SECONDS = 1.0


def blocks_to_s(blocks):
    return blocks * BLOCK_SECONDS


def advance(buffer_blocks, horizon_s, window_s, rate_bps):
    same_unit = horizon_s + window_s
    converted = horizon_s + blocks_to_s(buffer_blocks)
    # multiplicative unit algebra is legitimate (bits = bps * s)
    bits = rate_bps * window_s
    untagged = buffer_blocks + 3
    return same_unit, converted, bits, untagged
