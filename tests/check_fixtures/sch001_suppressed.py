"""Fixture: SCH001 occurrences silenced with per-line suppressions."""
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class SpanReport:
    time: float
    span: float

    def to_params(self) -> Dict[str, str]:
        return {"t": f"{self.time:.3f}", "span": f"{self.span:.3f}"}

    @classmethod
    def from_params(cls, p: Dict[str, str]) -> "SpanReport":
        return cls(time=float(p["t"]), span=float(p["span"]))


class SpanFold:
    def __init__(self):
        self.total = 0.0

    def update(self, report):
        self.total += report.span
        self.total += report.gap_hint  # repro: noqa[SCH001] planned field

    def result(self):
        return self.total
