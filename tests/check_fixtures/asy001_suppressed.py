"""Fixture: ASY001 occurrences silenced with per-line suppressions."""
import time


async def pump_blocks():
    time.sleep(0.5)  # repro: noqa[ASY001] fixture: demo suppression
    data = open("/tmp/f.dat")  # repro: noqa[ASY001] fixture: demo suppression
    return data
