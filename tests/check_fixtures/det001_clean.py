"""Fixture: DET001-clean -- explicitly seeded machinery only."""
import random

import numpy as np


def draw(seed):
    gen = np.random.default_rng(seed)
    ss = np.random.SeedSequence([seed, 7])
    other = np.random.Generator(np.random.PCG64(ss))
    local = random.Random(seed)
    return gen.random(), other.random(), local.random()
