"""Fixture: SCH002 positives -- emitted wire field nothing reads back."""
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class BeaconReport:
    time: float
    hop_count: int

    def to_params(self) -> Dict[str, str]:
        return {
            "t": f"{self.time:.3f}",
            # "hopc" is serialized on every beacon but no consumer ever
            # parses it back: pure log-server load (warn-level)
            "hopc": str(self.hop_count),
        }

    @classmethod
    def from_params(cls, p: Dict[str, str]) -> "BeaconReport":
        return cls(time=float(p["t"]), hop_count=0)
