"""Log sinks: spill round-trips, load validation, streaming merges."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    QoSReport,
    TrafficReport,
)
from repro.telemetry.server import LogEntry, LogServer
from repro.telemetry.sink import (
    SPILL_ENV_VAR,
    LogReader,
    MemorySink,
    SpillSink,
    default_sink,
    set_spill_root,
)


def _fill(server: LogServer, n: int) -> None:
    """n mixed, arrival-ordered reports (several types, distinct fields)."""
    for i in range(n):
        t = i * 0.5
        if i % 3 == 0:
            server.receive_report(t, ActivityReport(
                time=t, node_id=100 + i, user_id=i % 7, session_id=i,
                event=ActivityEvent.JOIN, attempt=1 + i % 3))
        elif i % 3 == 1:
            server.receive_report(t, QoSReport(
                time=t, node_id=100 + i, user_id=i % 7, session_id=i,
                continuity=(i % 50) / 50.0, buffered_seconds=float(i % 9),
                n_parents=i % 5, playing=bool(i % 2)))
        else:
            server.receive_report(t, TrafficReport(
                time=t, node_id=100 + i, user_id=i % 7, session_id=i,
                bytes_up=i * 17, bytes_down=i * 23))


class TestMemorySink:
    def test_append_len_iter(self):
        sink = MemorySink()
        entries = [LogEntry(float(i), f"/log?type=qos&t={i}.000&node=1"
                            f"&user=1&sess=1") for i in range(5)]
        for e in entries:
            sink.append(e)
        assert len(sink) == 5
        assert list(sink.iter_entries()) == entries

    def test_closed_sink_rejects_appends(self):
        sink = MemorySink()
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.append(LogEntry(0.0, "x"))


class TestSpillSink:
    def test_dump_byte_identical_to_memory(self, tmp_path):
        mem = LogServer(sink=MemorySink())
        spilled = LogServer(sink=SpillSink(tmp_path / "log",
                                           lines_per_chunk=7))
        _fill(mem, 40)
        _fill(spilled, 40)
        assert spilled.dumps() == mem.dumps()
        assert len(spilled) == len(mem) == 40

    def test_rotation_and_reader_round_trip(self, tmp_path):
        server = LogServer(sink=SpillSink(tmp_path / "log",
                                          lines_per_chunk=7))
        _fill(server, 40)
        before_close = server.dumps()
        server.close()
        # 40 lines at 7/chunk: five full chunks + the closed 5-line tail
        manifest = json.loads((tmp_path / "log" / "manifest.json").read_text())
        assert manifest["format"] == "repro-log-spill-v1"
        assert manifest["total_lines"] == 40
        assert [c["lines"] for c in manifest["chunks"]] == [7] * 5 + [5]

        reader = LogReader(tmp_path / "log")
        assert len(reader) == 40
        lines = [e.to_line() for e in reader.iter_entries()]
        assert "\n".join(lines) + "\n" == before_close
        # parsed reports stream in the same order too
        assert [r.time for r in reader.reports()] == \
               [e.arrival_time for e in reader.iter_entries()]

    def test_iter_entries_includes_unrotated_tail(self, tmp_path):
        server = LogServer(sink=SpillSink(tmp_path / "log",
                                          lines_per_chunk=100))
        _fill(server, 12)  # everything still in the tail
        assert len(list(server.iter_entries())) == 12

    def test_chunk_bytes_deterministic(self, tmp_path):
        for name in ("a", "b"):
            server = LogServer(sink=SpillSink(tmp_path / name,
                                              lines_per_chunk=10))
            _fill(server, 25)
            server.close()
        chunks_a = sorted((tmp_path / "a").glob("chunk-*"))
        chunks_b = sorted((tmp_path / "b").glob("chunk-*"))
        assert [c.name for c in chunks_a] == [c.name for c in chunks_b]
        for ca, cb in zip(chunks_a, chunks_b):
            assert ca.read_bytes() == cb.read_bytes()

    def test_uncompressed_chunks(self, tmp_path):
        server = LogServer(sink=SpillSink(tmp_path / "log",
                                          lines_per_chunk=5,
                                          compress=False))
        _fill(server, 11)
        server.close()
        chunks = sorted((tmp_path / "log").glob("chunk-*"))
        assert all(c.suffix == ".log" for c in chunks)
        assert len([e for e in LogReader(tmp_path / "log").iter_entries()]) \
            == 11

    def test_refuses_existing_spill_directory(self, tmp_path):
        server = LogServer(sink=SpillSink(tmp_path / "log",
                                          lines_per_chunk=2))
        _fill(server, 4)
        server.close()
        with pytest.raises(ValueError, match="already holds"):
            SpillSink(tmp_path / "log")

    def test_closed_sink_rejects_appends(self, tmp_path):
        sink = SpillSink(tmp_path / "log")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.append(LogEntry(0.0, "x"))

    def test_durability_unit_is_the_chunk(self, tmp_path):
        # no close(): the manifest only knows the rotated chunks, which is
        # exactly what a crash preserves
        server = LogServer(sink=SpillSink(tmp_path / "log",
                                          lines_per_chunk=10))
        _fill(server, 25)
        reader = LogReader(tmp_path / "log")
        assert len(reader) == 20  # two rotated chunks; 5-line tail lost

    def test_flush_persists_tail_and_appends_continue(self, tmp_path):
        server = LogServer(sink=SpillSink(tmp_path / "log",
                                          lines_per_chunk=10))
        _fill(server, 7)
        server.flush()
        assert len(LogReader(tmp_path / "log")) == 7  # sub-chunk tail on disk
        _fill(server, 7)
        server.flush()
        reader = LogReader(tmp_path / "log")
        assert len(reader) == 14
        assert [e.to_line() for e in reader.iter_entries()] == \
               [e.to_line() for e in server.iter_entries()]

    def test_finished_run_leaves_complete_spill_directory(self, tmp_path):
        # run_scenario flushes the log at the end, so a short run's
        # (sub-chunk) spill is on disk without anyone calling close()
        from repro.runtime import run_scenario
        from repro.workload.scenarios import steady_audience

        set_spill_root(tmp_path / "spill")
        try:
            res = run_scenario(
                steady_audience(rate_per_s=0.2, horizon_s=120.0),
                seed=0, engine="detailed")
        finally:
            set_spill_root(None)
        (spill_dir,) = (tmp_path / "spill").iterdir()
        reader = LogReader(spill_dir)
        assert len(reader) == len(res.log) > 0
        assert [e.to_line() for e in reader.iter_entries()] == \
               [e.to_line() for e in res.log.iter_entries()]

    def test_reader_rejects_non_spill_directory(self, tmp_path):
        with pytest.raises(ValueError, match="no spilled log"):
            LogReader(tmp_path)
        (tmp_path / "manifest.json").write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="not a repro log-spill"):
            LogReader(tmp_path)


class TestLoadValidation:
    """PR-6 regression: load() must survive truncated/garbage lines."""

    def test_corrupt_lines_counted_and_skipped(self):
        server = LogServer(sink=MemorySink())
        _fill(server, 9)
        good = server.dumps()
        lines = good.splitlines()
        lines.insert(3, "garbage without a timestamp")
        lines.insert(5, lines[0][:4])  # truncated before the log string
        lines.append("12.5 not-a-log-request")
        corrupted = "\n".join(lines) + "\n"

        loaded = LogServer.loads(corrupted)
        assert loaded.malformed_count == 3
        assert len(loaded) == 9
        assert loaded.dumps() == good

    def test_blank_lines_are_not_malformed(self):
        server = LogServer(sink=MemorySink())
        _fill(server, 3)
        padded = "\n" + server.dumps().replace("\n", "\n\n")
        loaded = LogServer.loads(padded)
        assert loaded.malformed_count == 0
        assert len(loaded) == 3

    def test_load_into_spill_sink(self, tmp_path):
        server = LogServer(sink=MemorySink())
        _fill(server, 30)
        loaded = LogServer.loads(
            server.dumps(),
            sink=SpillSink(tmp_path / "log", lines_per_chunk=8),
        )
        assert loaded.dumps() == server.dumps()


class TestStreamingMerge:
    def test_merge_matches_stable_sort_semantics(self):
        a, b = LogServer(sink=MemorySink()), LogServer(sink=MemorySink())
        # interleaved arrivals with ties across servers
        for i in range(20):
            a.receive_report(float(i), QoSReport(
                time=float(i), node_id=1, user_id=1, session_id=1,
                continuity=0.5))
            b.receive_report(float(i), QoSReport(
                time=float(i), node_id=2, user_id=2, session_id=2,
                continuity=0.9))
        merged = a.merged_with(b)
        expected = sorted(a.entries() + b.entries(),
                          key=lambda e: e.arrival_time)
        assert merged.entries() == expected
        # ties keep input order: server a's entry precedes b's
        assert merged.entries()[0].log_string == a.entries()[0].log_string

    def test_unsorted_memory_input_is_sorted_first(self):
        a, b = LogServer(sink=MemorySink()), LogServer(sink=MemorySink())
        for t in (5.0, 1.0, 3.0):  # manual out-of-order population
            a.receive_report(t, QoSReport(
                time=t, node_id=1, user_id=1, session_id=1))
        b.receive_report(2.0, QoSReport(
            time=2.0, node_id=2, user_id=2, session_id=2))
        merged = a.merged_with(b)
        times = [e.arrival_time for e in merged.entries()]
        assert times == sorted(times)

    def test_spilled_merge_is_byte_identical(self, tmp_path):
        mem_a, mem_b = LogServer(sink=MemorySink()), \
            LogServer(sink=MemorySink())
        _fill(mem_a, 25)
        _fill(mem_b, 25)
        expected = mem_a.merged_with(mem_b).dumps()

        sp_a = LogServer.loads(mem_a.dumps(),
                               sink=SpillSink(tmp_path / "a",
                                              lines_per_chunk=6))
        sp_b = LogServer.loads(mem_b.dumps(),
                               sink=SpillSink(tmp_path / "b",
                                              lines_per_chunk=9))
        merged = sp_a.merged_with(
            sp_b, sink=SpillSink(tmp_path / "out", lines_per_chunk=11))
        assert merged.dumps() == expected

    def test_kway_merge_and_malformed_sum(self):
        servers = []
        for k in range(3):
            s = LogServer(sink=MemorySink())
            _fill(s, 10)
            s.malformed_count = k
            servers.append(s)
        merged = LogServer.merged(servers)
        assert len(merged) == 30
        assert merged.malformed_count == 3
        times = [e.arrival_time for e in merged.entries()]
        assert times == sorted(times)


class TestDefaultSink:
    def test_memory_by_default(self, monkeypatch):
        monkeypatch.delenv(SPILL_ENV_VAR, raising=False)
        set_spill_root(None)
        assert isinstance(default_sink(), MemorySink)

    def test_env_var_selects_spill(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SPILL_ENV_VAR, str(tmp_path))
        try:
            sink = default_sink()
            assert isinstance(sink, SpillSink)
            assert sink.directory.parent == tmp_path
            # each server gets its own subdirectory
            assert default_sink().directory != sink.directory
        finally:
            set_spill_root(None)

    def test_explicit_root_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SPILL_ENV_VAR, str(tmp_path / "env"))
        set_spill_root(tmp_path / "explicit")
        try:
            sink = default_sink()
            assert isinstance(sink, SpillSink)
            assert sink.directory.parent == tmp_path / "explicit"
        finally:
            set_spill_root(None)


class TestGzipFormat:
    def test_chunks_are_plain_gzip_text(self, tmp_path):
        """Chunks must stay readable by any gzip tool, not a bespoke codec."""
        server = LogServer(sink=SpillSink(tmp_path / "log",
                                          lines_per_chunk=4))
        _fill(server, 8)
        server.close()
        chunk = sorted((tmp_path / "log").glob("chunk-*"))[0]
        text = gzip.decompress(chunk.read_bytes()).decode("utf-8")
        assert len(text.splitlines()) == 4
        assert text.splitlines()[0] == server.entries()[0].to_line()
