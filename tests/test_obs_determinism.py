"""Seed-determinism regression tests for the observability layer.

Two properties are load-bearing:

1. instrumentation must not perturb the simulation -- a run inside an
   obs session produces bit-identical outcomes to the same run outside;
2. the deterministic metric subset (counters) is itself reproducible --
   two observed runs with the same seed yield identical counter values.

Wall-clock measurements (timers, histograms, trace spans) are exempt by
design; :meth:`MetricsRegistry.counter_values` carves out the subset
these tests compare.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.core.config import SystemConfig
from repro.core.system import CoolstreamingSystem
from repro.fastsim import FastSimulation


@pytest.fixture(autouse=True)
def _no_leaked_session():
    assert obs.current() is None
    yield
    from repro.obs import context as obs_context
    obs_context.deactivate()


def _reference_run(seed):
    cfg = SystemConfig(n_servers=2)
    system = CoolstreamingSystem(cfg, seed=seed)
    for u in range(15):
        system.engine.schedule(u * 2.0, lambda u=u: system.spawn_peer(user_id=u))
    system.run(until=150.0)
    outcome = system.summary()
    outcome["events"] = system.engine.events_processed
    outcome["log"] = system.log.dumps()
    return outcome


def _fastsim_run(seed):
    cfg = SystemConfig(n_servers=2)
    sim = FastSimulation(cfg, seed=seed, capacity_hint=256)
    sim.add_arrivals(np.linspace(0.0, 30.0, 100), np.full(100, 200.0))
    sim.run(until=120.0)
    return {
        "steps": sim.steps_run,
        "playing": sim.playing_users,
        "continuity": sim.mean_continuity(),
        "live": sim.concurrent_users,
    }


class TestObsDoesNotPerturb:
    def test_reference_engine_identical_with_and_without_obs(self):
        plain = _reference_run(seed=11)
        with obs.session():
            observed = _reference_run(seed=11)
        assert observed == plain

    def test_fastsim_identical_with_and_without_obs(self):
        plain = _fastsim_run(seed=11)
        with obs.session():
            observed = _fastsim_run(seed=11)
        assert observed == plain


class TestCountersAreDeterministic:
    def test_reference_engine_same_seed_same_counters(self):
        with obs.session() as ctx:
            _reference_run(seed=4)
            first = ctx.registry.counter_values()
        with obs.session() as ctx:
            _reference_run(seed=4)
            second = ctx.registry.counter_values()
        assert first  # the run actually recorded protocol counters
        assert "core.partnerships_formed" in first
        assert "engine.events_executed" in first
        assert first == second

    def test_reference_engine_seed_changes_counters(self):
        with obs.session() as ctx:
            _reference_run(seed=4)
            a = ctx.registry.counter_values()
        with obs.session() as ctx:
            _reference_run(seed=5)
            b = ctx.registry.counter_values()
        assert a != b

    def test_fastsim_same_seed_same_counters(self):
        with obs.session() as ctx:
            _fastsim_run(seed=4)
            first = ctx.registry.counter_values()
        with obs.session() as ctx:
            _fastsim_run(seed=4)
            second = ctx.registry.counter_values()
        assert "fastsim.steps" in first
        assert "fastsim.joins" in first
        assert first == second
