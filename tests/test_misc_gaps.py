"""Gap-filling tests: smaller behaviours not covered elsewhere."""

import pytest

from repro.core.config import SystemConfig
from repro.experiments.ablations import run_variant
from repro.network.latency import LatencyModel
from repro.workload.arrivals import DiurnalProfile


class TestDiurnalSamplingStatistics:
    def test_evening_heavy(self, rng):
        profile = DiurnalProfile.evening_peak(day_seconds=86_400.0,
                                              peak_rate=0.5)
        times = profile.sample(86_400.0, rng)
        evening = ((times > 18 * 3600) & (times < 22 * 3600)).sum()
        night = ((times > 1 * 3600) & (times < 5 * 3600)).sum()
        assert evening > 4 * max(1, night)

    def test_rate_at_clamps_outside_anchors(self):
        profile = DiurnalProfile(anchors=((10.0, 2.0), (20.0, 4.0)))
        assert profile.rate_at(0.0) == 2.0
        assert profile.rate_at(100.0) == 4.0


class TestLatencyContains:
    def test_membership_protocol(self, rng):
        model = LatencyModel()
        assert "x" not in model
        model.register("x", rng)
        assert "x" in model


class TestOwnBufferMapSubscriptions:
    def test_subscription_bits_reflect_parents(self, small_system):
        """The second K entries of the 2K-tuple flag subscribed
        sub-streams (Fig. 2's wire format, live)."""
        node = small_system.spawn_peer(user_id=0)
        small_system.run(until=60.0)
        bm = node._own_bm()
        for sub in range(small_system.cfg.n_substreams):
            assert bm.subscriptions[sub] == (node.parents[sub] is not None)

    def test_heads_match_sync_buffers(self, small_system):
        node = small_system.spawn_peer(user_id=0)
        small_system.run(until=60.0)
        bm = node._own_bm()
        for sub in range(small_system.cfg.n_substreams):
            assert bm.head_local(sub, small_system.geometry) == node.heads[sub]


class TestPullThroughAblationHarness:
    def test_run_variant_handles_pull_mode(self):
        cfg = SystemConfig(n_servers=2, delivery_mode="pull")
        out = run_variant(cfg, seed=1, burst_users_per_s=0.5, horizon_s=400.0)
        assert out["success_fraction"] > 0.7
        assert out["sessions"] > 0


class TestReporterPhaseIndependence:
    def test_two_nodes_report_at_different_phases(self, small_system):
        """Status reports are phase-shifted by join time (the deployed
        collector's behaviour), so a flash crowd's reports spread out."""
        nodes = []
        small_system.engine.schedule(
            0.0, lambda: nodes.append(small_system.spawn_peer(user_id=0)))
        small_system.engine.schedule(
            47.0, lambda: nodes.append(small_system.spawn_peer(user_id=1)))
        small_system.run(until=400.0)
        from repro.telemetry.reports import QoSReport

        by_node = {}
        for r in small_system.log.reports_of(QoSReport):
            by_node.setdefault(r.node_id, []).append(r.time)
        times = [v[0] for v in by_node.values() if v]
        assert len(times) == 2
        assert abs(times[0] - times[1]) > 10.0


class TestConfigTableCustomization:
    def test_pull_mode_visible_in_repr_fields(self):
        cfg = SystemConfig(delivery_mode="pull", pull_horizon_s=6.0)
        assert cfg.pull_horizon_s == 6.0
        assert cfg.with_overrides(delivery_mode="push").delivery_mode == "push"

    def test_invalid_pull_params(self):
        with pytest.raises(ValueError):
            SystemConfig(pull_horizon_s=0.0)
        with pytest.raises(ValueError):
            SystemConfig(pull_timeout_s=-1.0)
