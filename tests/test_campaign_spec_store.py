"""Tests for the campaign spec layer and the content-addressed store."""

import json

import pytest

from repro.campaign.spec import CampaignSpec, SpecError, run_key, sweep
from repro.campaign.store import ResultStore


class TestRunKey:
    def test_insertion_order_does_not_change_key(self):
        a = run_key("fig3", 0, {"alpha": 1, "beta": 2.5}, "rev")
        b = run_key("fig3", 0, {"beta": 2.5, "alpha": 1}, "rev")
        assert a == b

    def test_every_component_matters(self):
        base = run_key("fig3", 0, {"a": 1}, "rev")
        assert run_key("fig4", 0, {"a": 1}, "rev") != base
        assert run_key("fig3", 1, {"a": 1}, "rev") != base
        assert run_key("fig3", 0, {"a": 2}, "rev") != base
        assert run_key("fig3", 0, {"a": 1}, "other-rev") != base
        assert run_key("fig3", 0, {"a": 1}, None) != base

    def test_negative_zero_collapses(self):
        assert run_key("e", 0, {"x": -0.0}, None) == \
            run_key("e", 0, {"x": 0.0}, None)


class TestSpecExpansion:
    def test_grid_times_seeds(self):
        spec = sweep("fig9_size", seeds=[0, 1],
                     grid={"n_users": [100, 200, 300]},
                     overrides={"horizon_s": 300.0},
                     code_version=None)
        assert len(spec.runs) == 6
        combos = {(r.seed, r.overrides["n_users"]) for r in spec.runs}
        assert combos == {(s, n) for s in (0, 1) for n in (100, 200, 300)}
        assert all(r.overrides["horizon_s"] == 300.0 for r in spec.runs)
        assert len({r.key for r in spec.runs}) == 6

    def test_campaign_key_stable_across_instances(self):
        d = {"name": "c", "entries": [
            {"experiment": "fig3", "seeds": [0, 1],
             "overrides": {"horizon_s": 300.0, "rate_per_s": 0.2}},
        ]}
        d_reordered = {"entries": [
            {"overrides": {"rate_per_s": 0.2, "horizon_s": 300.0},
             "seeds": [0, 1], "experiment": "fig3"},
        ], "name": "c"}
        k1 = CampaignSpec.from_dict(d, code_version=None).campaign_key
        k2 = CampaignSpec.from_dict(d_reordered, code_version=None).campaign_key
        assert k1 == k2

    def test_from_file_roundtrip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "filespec",
            "entries": [{"experiment": "model", "seeds": [3, 4]}],
        }))
        spec = CampaignSpec.from_file(path, code_version=None)
        assert spec.name == "filespec"
        assert [r.seed for r in spec.runs] == [3, 4]

    @pytest.mark.parametrize("bad", [
        [],                                            # not an object
        {"entries": []},                               # empty entries
        {"name": "", "entries": [{"experiment": "x"}]},
        {"name": "c", "entries": [{"seeds": [1]}]},    # missing experiment
        {"name": "c", "entries": [{"experiment": "x", "seeds": []}]},
        {"name": "c", "entries": [{"experiment": "x", "seeds": ["zap"]}]},
        {"name": "c", "entries": [{"experiment": "x", "grid": {"p": []}}]},
        {"name": "c", "entries": [{"experiment": "x", "typo": 1}]},
        {"name": "c", "entries": [{"experiment": "x",
                                   "grid": {"p": [1]},
                                   "overrides": {"p": 2}}]},
        {"name": "c", "entries": [{"experiment": "x"}], "extra": True},
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(SpecError):
            CampaignSpec.from_dict(bad, code_version=None)

    def test_unknown_override_key_rejected(self):
        # regression: a typo'd key used to be folded into every run key
        # and fail (or silently no-op) only at execution time
        with pytest.raises(SpecError, match="horizont_s"):
            CampaignSpec.from_dict({
                "name": "c",
                "entries": [{"experiment": "fig3",
                             "overrides": {"horizont_s": 60.0}}],
            }, code_version=None)

    def test_unknown_grid_key_rejected(self):
        with pytest.raises(SpecError, match="n_userz"):
            CampaignSpec.from_dict({
                "name": "c",
                "entries": [{"experiment": "fig9_size",
                             "grid": {"n_userz": [10, 20]}}],
            }, code_version=None)

    def test_seed_cannot_be_an_override(self):
        with pytest.raises(SpecError, match="'seed'"):
            CampaignSpec.from_dict({
                "name": "c",
                "entries": [{"experiment": "fig3",
                             "overrides": {"seed": 7}}],
            }, code_version=None)

    def test_engine_entry_rejected_for_engineless_experiment(self):
        # fig4 takes no engine parameter; pinning one would TypeError in
        # every worker after hashing -- reject at spec time instead
        with pytest.raises(SpecError, match="engine"):
            CampaignSpec.from_dict({
                "name": "c",
                "entries": [{"experiment": "fig4", "engine": "fast"}],
            }, code_version=None)

    def test_unresolvable_experiment_defers_validation_to_run_time(self):
        # module:qualname refs may only import inside workers; the spec
        # layer must not reject them for unknown keys it cannot check
        spec = CampaignSpec.from_dict({
            "name": "c",
            "entries": [{"experiment": "no.such.module:fn",
                         "overrides": {"whatever": 1}}],
        }, code_version=None)
        assert len(spec.runs) == 1

    def test_valid_override_keys_accepted(self):
        spec = CampaignSpec.from_dict({
            "name": "c",
            "entries": [{"experiment": "fig3",
                         "overrides": {"rate_per_s": 0.3},
                         "grid": {"horizon_s": [60.0, 120.0]}}],
        }, code_version=None)
        assert len(spec.runs) == 2

    def test_duplicate_runs_rejected(self):
        with pytest.raises(SpecError, match="duplicate"):
            CampaignSpec.from_dict({
                "name": "c",
                "entries": [
                    {"experiment": "x", "seeds": [0]},
                    {"experiment": "x", "seeds": [0]},
                ],
            }, code_version=None)

    def test_bad_json_file_raises_spec_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="not valid JSON"):
            CampaignSpec.from_file(path)

    def test_missing_file_raises_spec_error(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            CampaignSpec.from_file(tmp_path / "absent.json")


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "ab" + "0" * 62
        assert not store.has(key)
        assert store.get(key) is None
        store.put(key, {"metrics": {"m": 1.5}}, {"seed": 7})
        assert store.has(key)
        assert store.get(key) == {"metrics": {"m": 1.5}}
        assert json.loads(store.manifest_path(key).read_text())["seed"] == 7
        assert list(store.keys()) == [key]

    def test_corrupt_object_reads_as_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" + "1" * 62
        store.put(key, {"metrics": {}})
        store.object_path(key).write_text("{torn")
        assert store.get(key) is None

    def test_delete_and_clean(self, tmp_path):
        store = ResultStore(tmp_path)
        k1, k2 = "aa" + "2" * 62, "bb" + "3" * 62
        store.put(k1, {"metrics": {}})
        store.put(k2, {"metrics": {}})
        store.journal("done", run=k1)
        assert store.delete(k1)
        assert not store.delete(k1)
        assert store.clean() == 1
        assert list(store.keys()) == []
        assert store.read_journal() == []

    def test_journal_append_and_read(self, tmp_path):
        store = ResultStore(tmp_path)
        store.journal("start", campaign="c1", run="r1", attempt=1)
        store.journal("done", campaign="c1", run="r1")
        records = store.read_journal()
        assert [r["event"] for r in records] == ["start", "done"]
        assert all("ts" in r for r in records)

    def test_torn_final_line_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.journal("done", campaign="c1", run="r1")
        with open(store.journal_path, "a") as fh:
            fh.write('{"event": "done", "run": "r2"')  # crash mid-write
        records = store.read_journal()
        assert len(records) == 1
        assert records[0]["run"] == "r1"

    def test_journal_status_folds_latest_event(self, tmp_path):
        store = ResultStore(tmp_path)
        store.journal("start", campaign="c1", name="camp", run="r1", attempt=1)
        store.journal("done", campaign="c1", name="camp", run="r1")
        store.journal("start", campaign="c1", name="camp", run="r2", attempt=1)
        status = store.journal_status()["c1"]
        assert status["name"] == "camp"
        assert status["total"] == 2
        assert status["counts"] == {"done": 1, "start": 1}


class TestLogSpillSpecKey:
    """'log_spill' is storage-only: accepted, validated, never keyed."""

    def test_accepted_and_stored(self):
        spec = CampaignSpec.from_dict(
            {"name": "s", "log_spill": "/tmp/spill",
             "entries": [{"experiment": "model"}]},
            code_version=None,
        )
        assert spec.log_spill == "/tmp/spill"

    def test_default_is_none(self):
        spec = CampaignSpec.from_dict(
            {"name": "s", "entries": [{"experiment": "model"}]},
            code_version=None,
        )
        assert spec.log_spill is None

    def test_never_part_of_run_keys(self):
        base = {"name": "s", "entries": [{"experiment": "model",
                                          "seeds": [0, 1]}]}
        plain = CampaignSpec.from_dict(dict(base), code_version=None)
        spilled = CampaignSpec.from_dict(
            {**base, "log_spill": "/anywhere"}, code_version=None)
        assert [r.key for r in plain.runs] == [r.key for r in spilled.runs]
        assert plain.campaign_key == spilled.campaign_key

    @pytest.mark.parametrize("bad", ["", 7, ["dir"]])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(SpecError, match="log_spill"):
            CampaignSpec.from_dict(
                {"name": "s", "log_spill": bad,
                 "entries": [{"experiment": "model"}]},
                code_version=None,
            )

    def test_runner_exports_spill_root(self, tmp_path, monkeypatch):
        from repro.campaign.runner import run_campaign
        from repro.telemetry.sink import SPILL_ENV_VAR

        monkeypatch.delenv(SPILL_ENV_VAR, raising=False)
        spec = sweep("tests.campaign_helpers:quick_experiment",
                     seeds=[0], code_version=None)
        spec.log_spill = str(tmp_path / "spill")
        report = run_campaign(spec, store=None, jobs=1)
        assert report.failed == 0
        import os

        assert os.environ[SPILL_ENV_VAR] == str(tmp_path / "spill")
