"""Failure-injection tests: the system must degrade, not break.

Scenarios: dedicated-server death mid-stream, mass abrupt peer failure,
a saturated partner set, malformed log traffic, and pathological configs.
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.node import NodeState
from repro.core.system import CoolstreamingSystem
from repro.network.connectivity import ConnectivityClass
from repro.telemetry.reports import LeaveReason


class TestServerDeath:
    def test_peers_survive_losing_one_server(self, small_cfg):
        """With 2 servers, killing one mid-broadcast must not collapse the
        overlay: children re-select onto the survivor or onto peers."""
        system = CoolstreamingSystem(small_cfg, seed=13)
        nodes = []
        for u in range(15):
            system.engine.schedule(
                u * 1.5, lambda u=u: nodes.append(system.spawn_peer(user_id=u))
            )
        system.run(until=120.0)
        victim = system.servers[0]
        # simulate a server crash: it stops pushing and answering
        victim.state = NodeState.LEFT
        victim.scheduler.drop_child  # (object stays; alive() is now False)
        system.run(until=300.0)
        playing = [n for n in nodes if n.alive and n.state is NodeState.PLAYING]
        assert len(playing) >= 0.6 * sum(1 for n in nodes if n.alive)

    def test_all_servers_dead_strands_late_joiners(self, small_cfg):
        system = CoolstreamingSystem(small_cfg, seed=13)
        for server in system.servers:
            server.state = NodeState.LEFT
        node = system.spawn_peer(user_id=0)
        system.run(until=small_cfg.join_patience_s + 60.0)
        assert node.state is NodeState.LEFT  # gave up, did not hang


class TestMassChurn:
    def test_half_the_overlay_vanishes_silently(self, small_cfg):
        system = CoolstreamingSystem(small_cfg, seed=17)
        nodes = []
        for u in range(20):
            system.engine.schedule(
                u * 1.0, lambda u=u: nodes.append(system.spawn_peer(user_id=u))
            )
        system.run(until=120.0)
        alive = [n for n in nodes if n.alive]
        for node in alive[::2]:
            node.leave(LeaveReason.FAILURE, silent=True)
        system.run(until=360.0)
        survivors = [n for n in nodes if n.alive]
        playing = [n for n in survivors if n.state is NodeState.PLAYING]
        assert survivors
        assert len(playing) >= 0.7 * len(survivors)
        # silent victims' partnerships were garbage-collected via timeouts
        for n in playing:
            for pid in n.partners.ids():
                peer = system.get_node(pid)
                assert peer is not None and peer.alive


class TestHostileInput:
    def test_log_server_survives_garbage(self):
        from repro.telemetry.server import LogServer

        server = LogServer()
        for junk in ("", "GET /", "/log", "/log?", "???", "/log?type=act"):
            server.receive(0.0, junk)
        # the last one decodes as a dict but fails report parsing later;
        # storage-level validation only requires log-string syntax
        assert server.malformed_count >= 5

    def test_unknown_report_type_fails_loudly_at_parse(self):
        from repro.telemetry.server import LogServer

        server = LogServer()
        assert server.receive(0.0, "/log?type=alien&t=1")
        with pytest.raises(ValueError):
            list(server.reports())

    def test_rpc_to_never_existing_node(self, small_system):
        small_system.rpc(0, 999999, "rpc_bm_update", 0, None)
        small_system.run(until=5.0)  # silently dropped


class TestPathologicalConfigs:
    def test_single_substream_system_works(self):
        cfg = SystemConfig(n_servers=2, n_substreams=1)
        system = CoolstreamingSystem(cfg, seed=3)
        nodes = [system.spawn_peer(user_id=0)]
        system.run(until=120.0)
        assert nodes[0].state is NodeState.PLAYING

    def test_many_substreams_system_works(self):
        cfg = SystemConfig(n_servers=2, n_substreams=8)
        system = CoolstreamingSystem(cfg, seed=3)
        node = system.spawn_peer(user_id=0)
        system.run(until=120.0)
        assert node.state is NodeState.PLAYING

    def test_tiny_buffer_still_joins(self):
        cfg = SystemConfig(n_servers=2, buffer_seconds=20.0, tp_seconds=8.0,
                           player_buffer_s=5.0)
        system = CoolstreamingSystem(cfg, seed=3)
        node = system.spawn_peer(user_id=0)
        system.run(until=120.0)
        assert node.state is NodeState.PLAYING

    def test_nat_only_population_mostly_fails(self):
        """With every peer behind NAT and tiny server fleet, late joiners
        cannot find partners once the servers saturate -- the system sheds
        load instead of wedging."""
        from repro.network.connectivity import ConnectivityMix

        cfg = SystemConfig(n_servers=1, server_max_partners=4,
                           nat_traversal_prob=0.0)
        system = CoolstreamingSystem(
            cfg, seed=3,
            connectivity_mix=ConnectivityMix(
                fractions={ConnectivityClass.NAT: 1.0}
            ),
        )
        nodes = []
        for u in range(20):
            system.engine.schedule(
                u * 0.5, lambda u=u: nodes.append(system.spawn_peer(user_id=u))
            )
        system.run(until=300.0)
        # engine terminates, some succeeded, the rest left impatient
        assert all(not n.alive or n.state is not NodeState.INIT for n in nodes)
        left = [n for n in nodes if not n.alive]
        assert left  # shedding happened
