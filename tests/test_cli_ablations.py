"""Tests for the CLI and the ablation helpers."""

import json


from repro.experiments.cli import ABLATIONS, EXPERIMENTS, main
from repro.experiments.ablations import run_variant
from repro.core.config import SystemConfig


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["figure99"]) == 2

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "768 kbps" in out

    def test_registry_covers_every_figure(self):
        for fig in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                    "fig9", "fig10", "table1", "model", "convergence"):
            assert fig in EXPERIMENTS

    def test_ablation_registry(self):
        assert set(ABLATIONS) == {
            "offset", "parent-choice", "mcache", "cooldown", "substreams",
            "delivery-mode",
        }

    def test_unknown_experiment_prints_one_line_error(self, capsys):
        assert main(["figure99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_experiment_exception_exits_one_without_traceback(
            self, capsys, monkeypatch):
        def boom(seed):
            raise RuntimeError("synthetic failure")
        monkeypatch.setitem(EXPERIMENTS, "boom", boom)
        assert main(["boom"]) == 1
        err = capsys.readouterr().err
        assert "error: boom: RuntimeError: synthetic failure" in err
        assert "Traceback" not in err

    def test_quiet_suppresses_tables(self, capsys):
        assert main(["table1", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_metrics_out_writes_series_and_manifest(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        assert main(["table1", "--quiet",
                     "--metrics-out", str(metrics), "--seed", "3"]) == 0
        lines = [json.loads(l) for l in metrics.read_text().splitlines()]
        assert lines  # at least the final snapshot
        manifest = json.loads((tmp_path / "m.manifest.json").read_text())
        assert manifest["scenario"] == "table1"
        assert manifest["seed"] == 3

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(["model", "--quiet", "--trace-out", str(trace)]) == 0
        data = json.loads(trace.read_text())
        assert "traceEvents" in data


class TestRunVariant:
    def test_metrics_schema(self):
        cfg = SystemConfig(n_servers=2)
        out = run_variant(cfg, seed=0, burst_users_per_s=0.5, horizon_s=400.0)
        assert set(out) == {
            "sessions", "success_fraction", "continuity", "adaptations",
            "ready_median_s", "ready_p90_s",
        }
        assert out["sessions"] > 0

    def test_matched_seeds_identical_baseline(self):
        """Two runs of the same variant are bit-identical (the property
        the ablation comparisons rely on)."""
        cfg = SystemConfig(n_servers=2)
        a = run_variant(cfg, seed=5, burst_users_per_s=0.5, horizon_s=400.0)
        b = run_variant(cfg, seed=5, burst_users_per_s=0.5, horizon_s=400.0)
        assert a == b

    def test_variant_flag_actually_changes_behaviour(self):
        base = SystemConfig(n_servers=2)
        a = run_variant(base, seed=5, burst_users_per_s=0.8, horizon_s=400.0)
        b = run_variant(
            base.with_overrides(initial_offset_mode="oldest"),
            seed=5, burst_users_per_s=0.8, horizon_s=400.0,
        )
        assert a != b
