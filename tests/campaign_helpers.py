"""Module-level experiment callables for campaign tests.

Campaign workers re-resolve experiments by ``module:qualname``, so test
experiments must live at module level in an importable module (pytest
imports this as ``tests.campaign_helpers``; forked workers inherit it).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.experiments.render import FigureResult


def quick_experiment(*, seed: int, offset: float = 0.0) -> FigureResult:
    """Deterministic, instant: metrics are a pure function of inputs."""
    fr = FigureResult("Fig. T", "campaign test experiment")
    fr.metrics["value"] = 10.0 + seed + offset
    fr.metrics["seed"] = float(seed)
    return fr


def busy_experiment(*, seed: int, spin_s: float = 0.3) -> FigureResult:
    """Burns ~spin_s of CPU (for speedup/heartbeat behaviour)."""
    # wall clock is the point here: the experiment must burn real CPU
    # time so campaign speedup/heartbeat behaviour is observable
    t0 = time.perf_counter()  # repro: noqa[DET002]
    x = float(seed)
    while time.perf_counter() - t0 < spin_s:  # repro: noqa[DET002]
        x = (x * 1.0000001 + 1.0) % 1e9
    fr = FigureResult("Fig. B", "busy")
    fr.metrics["x"] = x
    fr.metrics["seed"] = float(seed)
    return fr


def sleepy_experiment(*, seed: int, sleep_s: float = 5.0) -> FigureResult:
    """Sleeps past any reasonable per-run timeout."""
    time.sleep(sleep_s)
    fr = FigureResult("Fig. S", "sleepy")
    fr.metrics["seed"] = float(seed)
    return fr


def broken_experiment(*, seed: int) -> FigureResult:
    """Always fails deterministically (never retried as transient)."""
    raise ValueError(f"deterministic failure at seed {seed}")


def flaky_experiment(*, seed: int, counter_file: str,
                     fail_times: int = 2) -> FigureResult:
    """Raises OSError (transient) until ``counter_file`` has
    ``fail_times`` lines; cross-process state so retries in worker
    processes see prior attempts."""
    path = Path(counter_file)
    attempts = len(path.read_text().splitlines()) if path.exists() else 0
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(f"attempt {attempts + 1}\n")
        fh.flush()
    if attempts < fail_times:
        raise OSError(f"transient hiccup {attempts + 1}")
    fr = FigureResult("Fig. F", "flaky")
    fr.metrics["attempts"] = float(attempts + 1)
    fr.metrics["seed"] = float(seed)
    return fr
