"""Tests for pull-mode scheduling (the DONet baseline)."""

import pytest

from repro.core.config import SystemConfig
from repro.core.node import NodeState
from repro.core.pull import PullRequest, PullRequester, PullScheduler
from repro.core.system import CoolstreamingSystem


class TestPullRequest:
    def test_size(self):
        assert PullRequest(0, 3, 7).size == 5

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            PullRequest(0, 5, 4)
        with pytest.raises(ValueError):
            PullRequest(0, -1, 4)


class TestPullScheduler:
    def make(self, slots=10.0):
        return PullScheduler(slots, 1.0, 1.0)

    def collect(self):
        got = []

        def push(child, sub, first, last):
            got.append((child, sub, first, last))

        return got, push

    def test_serves_queued_request(self):
        sched = self.make()
        sched.enqueue(1, [PullRequest(0, 0, 4)])
        got, push = self.collect()
        sched.deliver(1.0, [10], 1 << 30, push)
        assert got == [(1, 0, 0, 4)]
        assert sched.outstanding(1) == 0

    def test_large_request_served_across_quanta(self):
        sched = self.make(slots=3.0)  # 3 blocks/s at catch-up... capped by rate
        sched.enqueue(1, [PullRequest(0, 0, 9)])
        got, push = self.collect()
        sched.deliver(1.0, [20], 1 << 30, push)
        served_first = sum(l - f + 1 for _c, _s, f, l in got)
        assert 0 < served_first < 10
        for _ in range(5):
            sched.deliver(1.0, [20], 1 << 30, push)
        served = sum(l - f + 1 for _c, _s, f, l in got)
        assert served == 10

    def test_clamps_to_parent_head(self):
        sched = self.make()
        sched.enqueue(1, [PullRequest(0, 0, 9)])
        got, push = self.collect()
        sched.deliver(1.0, [4], 1 << 30, push)
        assert got[-1][3] <= 4

    def test_discards_unservable(self):
        sched = self.make()
        sched.enqueue(1, [PullRequest(0, 50, 60)])  # far beyond head
        got, push = self.collect()
        sched.deliver(1.0, [4], 1 << 30, push)
        assert got == []
        assert sched.outstanding(1) == 0  # dropped; child will re-request

    def test_clamps_to_cache_floor(self):
        sched = self.make()
        sched.enqueue(1, [PullRequest(0, 90, 99)])
        got, push = self.collect()
        sched.deliver(1.0, [100], 6, push)
        assert got[0][2] == 95  # evicted prefix skipped

    def test_fully_evicted_request_discarded(self):
        sched = self.make()
        sched.enqueue(1, [PullRequest(0, 0, 9)])
        got, push = self.collect()
        sched.deliver(1.0, [100], 6, push)
        assert got == []
        assert sched.outstanding(1) == 0

    def test_fair_sharing_between_children(self):
        sched = self.make(slots=4.0)
        sched.enqueue(1, [PullRequest(0, 0, 99)])
        sched.enqueue(2, [PullRequest(0, 0, 99)])
        got, push = self.collect()
        for _ in range(10):
            sched.deliver(1.0, [200], 1 << 30, push)
        per_child = {1: 0, 2: 0}
        for c, _s, f, l in got:
            per_child[c] += l - f + 1
        assert abs(per_child[1] - per_child[2]) <= 4

    def test_drop_child_clears_queue(self):
        sched = self.make()
        sched.enqueue(1, [PullRequest(0, 0, 9)])
        sched.drop_child(1)
        assert sched.outstanding(1) == 0
        assert sched.busy_children == 0


class TestPullRequester:
    def test_plans_from_head_to_horizon(self, rng):
        req = PullRequester(2, horizon_blocks=5, timeout_s=4.0)
        plan = req.plan(0.0, [9, 9], [(7, [30, 30])], rng)
        assert set(plan) == {7}
        intervals = {(r.substream, r.first, r.last) for r in plan[7]}
        assert intervals == {(0, 10, 14), (1, 10, 14)}

    def test_no_duplicate_in_flight_requests(self, rng):
        req = PullRequester(1, horizon_blocks=5, timeout_s=4.0)
        p1 = req.plan(0.0, [9], [(7, [30])], rng)
        assert p1
        p2 = req.plan(1.0, [9], [(7, [30])], rng)  # nothing arrived yet
        assert p2 == {}

    def test_timeout_replans(self, rng):
        req = PullRequester(1, horizon_blocks=5, timeout_s=4.0)
        req.plan(0.0, [9], [(7, [30])], rng)
        p2 = req.plan(5.0, [9], [(7, [30])], rng)  # expired
        assert p2

    def test_head_progress_allows_next_request(self, rng):
        req = PullRequester(1, horizon_blocks=5, timeout_s=100.0)
        req.plan(0.0, [9], [(7, [30])], rng)
        req.note_head(0, 14)  # everything arrived
        p2 = req.plan(1.0, [14], [(7, [30])], rng)
        assert p2[7][0].first == 15

    def test_clamped_by_supplier_head(self, rng):
        req = PullRequester(1, horizon_blocks=50, timeout_s=4.0)
        plan = req.plan(0.0, [9], [(7, [12])], rng)
        assert plan[7][0].last == 12

    def test_unqualified_suppliers_skipped(self, rng):
        req = PullRequester(1, horizon_blocks=5, timeout_s=4.0)
        assert req.plan(0.0, [9], [(7, [8])], rng) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            PullRequester(0, 5, 1.0)
        with pytest.raises(ValueError):
            PullRequester(1, 5, 0.0)


class TestPullModeEndToEnd:
    def test_peers_reach_playing(self, small_cfg):
        cfg = small_cfg.with_overrides(delivery_mode="pull")
        system = CoolstreamingSystem(cfg, seed=3)
        nodes = []
        for u in range(12):
            system.engine.schedule(
                u * 1.0, lambda u=u: nodes.append(system.spawn_peer(user_id=u))
            )
        system.run(until=240.0)
        playing = [n for n in nodes if n.alive and n.state is NodeState.PLAYING]
        assert len(playing) >= 10
        cont = [n.playback.continuity_index for n in playing]
        assert min(cont) > 0.9

    def test_pull_uses_no_push_subscriptions(self, small_cfg):
        cfg = small_cfg.with_overrides(delivery_mode="pull")
        system = CoolstreamingSystem(cfg, seed=3)
        node = system.spawn_peer(user_id=0)
        system.run(until=120.0)
        assert node.state is NodeState.PLAYING
        assert all(p is None for p in node.parents)
        # requests flowed instead
        assert node.pull_req.requests_sent > 0

    def test_pull_survives_supplier_departure(self, small_cfg):
        from repro.telemetry.reports import LeaveReason

        cfg = small_cfg.with_overrides(delivery_mode="pull")
        system = CoolstreamingSystem(cfg, seed=9)
        nodes = []
        for u in range(10):
            system.engine.schedule(
                u * 1.0, lambda u=u: nodes.append(system.spawn_peer(user_id=u))
            )
        system.run(until=100.0)
        # kill half the peers silently
        for n in [x for x in nodes if x.alive][::2]:
            n.leave(LeaveReason.FAILURE, silent=True)
        system.run(until=260.0)
        survivors = [n for n in nodes if n.alive]
        playing = [n for n in survivors if n.state is NodeState.PLAYING]
        assert len(playing) >= 0.7 * len(survivors)

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(delivery_mode="hybrid")


class TestQueuedBlocksCache:
    """``outstanding`` reads an O(1) per-child cache; it must agree with a
    brute-force scan of the actual queues after any operation mix."""

    @staticmethod
    def _brute_force(sched, child):
        return sum(r.last - r.first + 1
                   for r in sched._queues.get(child, ()))

    def _check_all(self, sched, children):
        for c in children:
            assert sched.outstanding(c) == self._brute_force(sched, c)

    def test_cache_tracks_queues_through_mixed_workload(self, rng):
        sched = PullScheduler(4.0, 1.0, 1.0)
        children = (1, 2, 3)
        for _step in range(300):
            action = int(rng.integers(0, 5))
            child = int(rng.choice(children))
            if action in (0, 1):
                first = int(rng.integers(0, 50))
                span = int(rng.integers(0, 10))
                sched.enqueue(child, [PullRequest(0, first, first + span)])
            elif action == 2:
                # normal service; some requests clamp or drop at the head
                sched.deliver(1.0, [int(rng.integers(0, 60))], 1 << 30,
                              lambda *a: None)
            elif action == 3:
                sched.drop_child(child)
            else:
                # tiny cache window: forces eviction-driven drops/clamps
                sched.deliver(1.0, [30], 6, lambda *a: None)
            self._check_all(sched, children)

    def test_drop_child_after_partial_service(self):
        sched = PullScheduler(2.0, 1.0, 1.0)
        sched.enqueue(1, [PullRequest(0, 0, 9)])
        sched.deliver(1.0, [20], 1 << 30, lambda *a: None)  # partial service
        assert 0 < sched.outstanding(1) < 10
        sched.drop_child(1)
        assert sched.outstanding(1) == 0 == self._brute_force(sched, 1)
        assert sched.busy_children == 0
        # a re-joining child starts from a fresh, consistent cache entry
        sched.enqueue(1, [PullRequest(0, 0, 4)])
        assert sched.outstanding(1) == 5 == self._brute_force(sched, 1)

    def test_push_callback_dropping_child_keeps_cache_consistent(self):
        """deliver()'s settlement must survive push() re-entering
        drop_child (a failed send departing the child mid-quantum)."""
        sched = PullScheduler(4.0, 1.0, 1.0)
        sched.enqueue(1, [PullRequest(0, 0, 9)])
        sched.enqueue(2, [PullRequest(0, 0, 9)])

        def push(child, _sub, _first, _last):
            if child == 1:
                sched.drop_child(1)

        sched.deliver(1.0, [20], 1 << 30, push)
        self._check_all(sched, (1, 2))
        assert sched.outstanding(1) == 0
