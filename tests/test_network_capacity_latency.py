"""Unit tests for capacity sampling and the latency model."""

import numpy as np
import pytest

from repro.network.capacity import CapacityModel, CapacityProfile
from repro.network.connectivity import ConnectivityClass
from repro.network.latency import LatencyModel


class TestCapacityProfile:
    def test_mean(self):
        p = CapacityProfile(uploads_bps=(100.0, 200.0), probabilities=(0.5, 0.5))
        assert p.mean_bps == 150.0

    def test_sampling_from_tiers_only(self, rng):
        p = CapacityProfile(uploads_bps=(100.0, 200.0), probabilities=(0.3, 0.7))
        samples = p.sample(1000, rng)
        assert set(np.unique(samples)) <= {100.0, 200.0}

    def test_sampling_statistics(self, rng):
        p = CapacityProfile(uploads_bps=(0.0, 1.0), probabilities=(0.25, 0.75))
        assert 0.70 < p.sample(5000, rng).mean() < 0.80

    def test_misaligned_lengths_rejected(self):
        with pytest.raises(ValueError):
            CapacityProfile(uploads_bps=(1.0,), probabilities=(0.5, 0.5))

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            CapacityProfile(uploads_bps=(1.0, 2.0), probabilities=(0.5, 0.6))

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            CapacityProfile(uploads_bps=(), probabilities=())

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            CapacityProfile(uploads_bps=(-1.0,), probabilities=(1.0,))


class TestCapacityModel:
    def test_default_has_all_classes(self):
        model = CapacityModel()
        for cls in ConnectivityClass:
            assert model.sample_upload(cls, np.random.default_rng(0)) >= 0

    def test_server_capacity_is_100mbps(self, rng):
        assert CapacityModel().sample_upload(
            ConnectivityClass.SERVER, rng
        ) == 100_000_000.0

    def test_contributor_classes_have_higher_mean(self):
        model = CapacityModel()
        assert model.mean_upload(ConnectivityClass.DIRECT) > model.mean_upload(
            ConnectivityClass.NAT
        )
        assert model.mean_upload(ConnectivityClass.UPNP) > model.mean_upload(
            ConnectivityClass.NAT
        )

    def test_vectorized_sampling_matches_classes(self, rng):
        model = CapacityModel()
        classes = [ConnectivityClass.SERVER] * 3 + [ConnectivityClass.NAT] * 2
        ups = model.sample_uploads(classes, rng)
        assert (ups[:3] == 100_000_000.0).all()
        assert (ups[3:] < 1_000_000.0).all()

    def test_download_factor(self):
        model = CapacityModel(download_factor=4.0)
        assert model.download_for(1000.0) == 4000.0

    def test_nonpositive_download_factor_rejected(self):
        with pytest.raises(ValueError):
            CapacityModel(download_factor=0.0)

    def test_scaled_model(self, rng):
        model = CapacityModel().scaled(0.5)
        assert model.sample_upload(ConnectivityClass.SERVER, rng) == 50_000_000.0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CapacityModel().scaled(0.0)


class TestLatencyModel:
    def test_delay_requires_registration(self, rng):
        model = LatencyModel()
        model.register("a", rng)
        with pytest.raises(KeyError):
            model.delay("a", "b")

    def test_delay_is_symmetric(self, rng):
        model = LatencyModel()
        model.register("a", rng)
        model.register("b", rng)
        assert model.delay("a", "b") == model.delay("b", "a")

    def test_delay_at_least_base(self, rng):
        model = LatencyModel(base_s=0.02)
        model.register("a", rng)
        model.register("b", rng)
        assert model.delay("a", "b") >= 0.02

    def test_rtt_is_twice_delay(self, rng):
        model = LatencyModel()
        model.register("a", rng)
        model.register("b", rng)
        assert model.rtt("a", "b") == 2 * model.delay("a", "b")

    def test_register_is_idempotent(self, rng):
        model = LatencyModel()
        r1 = model.register("a", rng)
        r2 = model.register("a", rng)
        assert r1 == r2

    def test_unregister(self, rng):
        model = LatencyModel()
        model.register("a", rng)
        model.unregister("a")
        assert "a" not in model

    def test_triangle_inequality(self, rng):
        model = LatencyModel()
        for n in ("a", "b", "c"):
            model.register(n, rng)
        assert model.delay("a", "c") <= (
            model.delay("a", "b") + model.delay("b", "c") + 1e-12
        )

    def test_zero_radius_model(self, rng):
        model = LatencyModel(base_s=0.01, mean_radius_s=0.0)
        model.register("a", rng)
        model.register("b", rng)
        assert model.delay("a", "b") == 0.01

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base_s=-0.1)
