"""Campaign determinism and crash-resume guarantees.

* A 2-worker campaign of fig9 micro-runs produces byte-identical per-run
  metrics to ``jobs=1`` (workers call the same figure function with the
  same seed, so RngHub streams are identical).
* After a simulated crash (journal killed mid-campaign, some results
  missing), re-running the same spec executes only the missing runs.
"""

import json

from repro.campaign import CampaignSpec, ResultStore, run_campaign


def fig9_micro_spec() -> CampaignSpec:
    """A tiny Fig. 9 sweep: 2 size points x 2 seeds (seconds, not minutes)."""
    return CampaignSpec.from_dict({
        "name": "fig9-micro",
        "entries": [{
            "experiment": "fig9_size",
            "seeds": [0, 1],
            "grid": {"n_users": [40, 80]},
            "overrides": {"horizon_s": 120.0},
        }],
    }, code_version=None)


def metrics_bytes(report) -> list:
    """Canonical byte serialisation of each run's metrics, spec order."""
    return [
        json.dumps(r.metrics, sort_keys=True).encode("utf-8")
        for r in report.results
    ]


class TestDeterminism:
    def test_two_workers_bit_identical_to_sequential(self, tmp_path):
        seq = run_campaign(fig9_micro_spec(), ResultStore(tmp_path / "a"),
                           jobs=1)
        par = run_campaign(fig9_micro_spec(), ResultStore(tmp_path / "b"),
                           jobs=2)
        assert seq.ok and par.ok
        assert metrics_bytes(seq) == metrics_bytes(par)
        # and the cached payloads on disk are byte-identical too
        for run in fig9_micro_spec().runs:
            pa = ResultStore(tmp_path / "a").object_path(run.key)
            pb = ResultStore(tmp_path / "b").object_path(run.key)
            assert pa.read_bytes() == pb.read_bytes()

    def test_fig9_figure_function_identical_across_jobs(self):
        from repro.experiments.figures import fig9_scalability

        kw = dict(seed=1, sizes=(40,), join_rates=(0.4,), horizon_s=120.0)
        assert fig9_scalability(**kw, jobs=1).to_json() == \
            fig9_scalability(**kw, jobs=2).to_json()


class TestResume:
    def test_only_missing_runs_reexecute_after_crash(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = fig9_micro_spec()
        first = run_campaign(spec, store, jobs=1)
        assert first.executed == 4

        # simulate a crash mid-campaign: the journal dies and the last
        # two results were never written
        store.journal_path.unlink()
        killed = [r.key for r in spec.runs[2:]]
        for key in killed:
            assert store.delete(key)

        resumed = run_campaign(spec, store, jobs=1)
        assert resumed.ok
        assert resumed.cached == 2          # the surviving objects
        assert resumed.executed == 2        # only the missing runs re-ran
        executed_keys = {r.spec.key for r in resumed.results
                         if r.status == "done"}
        assert executed_keys == set(killed)
        # and the re-executed results equal the originals bit-for-bit
        by_key_first = {r.spec.key: r.metrics for r in first.results}
        for r in resumed.results:
            assert r.metrics == by_key_first[r.spec.key]

    def test_torn_journal_line_does_not_block_resume(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = fig9_micro_spec()
        run_campaign(spec, store, jobs=1)
        with open(store.journal_path, "a") as fh:
            fh.write('{"event": "start", "run": "r')  # torn write
        again = run_campaign(spec, store, jobs=1)
        assert again.executed == 0 and again.cached == 4
