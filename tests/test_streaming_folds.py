"""Streaming folds: single-pass analysis equals whole-trace analysis,
in memory and over a spilled log, bit for bit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.classification import classify_users
from repro.analysis.continuity import (
    continuity_by_type,
    continuity_samples,
    mean_continuity,
)
from repro.analysis.contribution import contribution_by_type, upload_totals
from repro.analysis.funnel import join_funnel
from repro.analysis.partners import churn_by_type, partner_events
from repro.analysis.sessions import SessionTable
from repro.analysis.streaming import (
    ClassifyUsersFold,
    ConcurrentUsersFold,
    ContinuitySamplesFold,
    Fold,
    JoinFunnelFold,
    PartnerEventsFold,
    SessionTableFold,
    UploadTotalsFold,
    fold_log,
    iter_reports,
)
from repro.runtime import run_scenario
from repro.telemetry.server import LogServer
from repro.telemetry.sink import SpillSink
from repro.workload.scenarios import steady_audience


@pytest.fixture(scope="module")
def mem_log():
    """A churny default-engine log exercising every report type."""
    scenario = steady_audience(rate_per_s=0.3, horizon_s=400.0, n_servers=2)
    res = run_scenario(scenario, seed=3, engine="detailed")
    return res.system.log


@pytest.fixture(scope="module")
def spilled_log(mem_log, tmp_path_factory):
    """The same log reloaded into a spill sink with many chunk rotations."""
    root = tmp_path_factory.mktemp("spill")
    server = LogServer.loads(
        mem_log.dumps(), sink=SpillSink(root / "log", lines_per_chunk=50))
    assert len(server) == len(mem_log)
    return server


def _table_payload(table: SessionTable):
    """Everything a figure reads off a session table."""
    return (
        [(s.user_id, s.session_id, s.node_id, s.attempt, s.address_public,
          s.join_time, s.subscription_time, s.ready_time, s.leave_time,
          s.leave_reason)
         for s in table.sessions()],
        tuple(a.tolist() for a in
              table.concurrent_users(t0=0.0, t1=400.0, step_s=30.0)),
        table.retry_histogram(),
    )


class TestSpilledEqualsMemory:
    """Every figure reconstruction is bit-identical over the spilled log."""

    def test_log_not_trivial(self, mem_log):
        # the fixture must exercise folds for real: hundreds of reports,
        # several users, at least one departure
        assert len(mem_log) > 200
        table = SessionTable.from_log(mem_log)
        assert len(table.sessions()) > 10
        assert any(s.leave_time is not None for s in table.sessions())

    def test_sessions_table(self, mem_log, spilled_log):
        assert _table_payload(SessionTable.from_log(mem_log)) == \
               _table_payload(SessionTable.from_log(spilled_log))

    def test_classification(self, mem_log, spilled_log):
        assert classify_users(mem_log) == classify_users(spilled_log)

    def test_upload_totals_and_contribution(self, mem_log, spilled_log):
        assert upload_totals(mem_log) == upload_totals(spilled_log)
        assert contribution_by_type(mem_log) == \
               contribution_by_type(spilled_log)

    def test_continuity(self, mem_log, spilled_log):
        assert continuity_samples(mem_log) == continuity_samples(spilled_log)
        by_type_mem = continuity_by_type(mem_log)
        by_type_spill = continuity_by_type(spilled_log)
        assert by_type_mem.keys() == by_type_spill.keys()
        for utype, series_mem in by_type_mem.items():
            for arr_mem, arr_spill in zip(series_mem, by_type_spill[utype]):
                assert np.array_equal(arr_mem, arr_spill, equal_nan=True)
        a = mean_continuity(mem_log, after=60.0)
        b = mean_continuity(spilled_log, after=60.0)
        assert (a == b) or (np.isnan(a) and np.isnan(b))

    def test_partner_events_and_churn(self, mem_log, spilled_log):
        assert partner_events(mem_log) == partner_events(spilled_log)
        assert churn_by_type(mem_log) == churn_by_type(spilled_log)

    def test_join_funnel(self, mem_log, spilled_log):
        assert join_funnel(mem_log) == join_funnel(spilled_log)


class TestSinglePassEqualsWholeTrace:
    """fold_log over N folds equals N independent whole-trace passes."""

    def test_multi_fold_single_pass(self, mem_log):
        types, totals, samples, events = fold_log(
            mem_log, ClassifyUsersFold(), UploadTotalsFold(),
            ContinuitySamplesFold(), PartnerEventsFold())
        assert types == classify_users(mem_log)
        assert totals == upload_totals(mem_log)
        assert samples == continuity_samples(mem_log)
        assert events == partner_events(mem_log)

    def test_wrapped_folds(self, mem_log):
        (grid, counts), funnel = fold_log(
            mem_log,
            ConcurrentUsersFold(t0=0.0, t1=400.0, step_s=30.0),
            JoinFunnelFold())
        ref_grid, ref_counts = SessionTable.from_log(
            mem_log).concurrent_users(t0=0.0, t1=400.0, step_s=30.0)
        assert np.array_equal(grid, ref_grid)
        assert np.array_equal(counts, ref_counts)
        assert funnel == join_funnel(mem_log)

    def test_session_fold_alone(self, mem_log):
        (table,) = fold_log(mem_log, SessionTableFold())
        assert _table_payload(table) == \
               _table_payload(SessionTable.from_log(mem_log))


class TestFigurePayloadsUnderSpill:
    """End-to-end: a figure regenerated with a spill root configured
    renders byte-identically to the in-memory run -- spilling relocates
    log storage only, on each figure's default engine."""

    @pytest.mark.parametrize("name,kwargs", [
        ("fig3", dict(seed=1, rate_per_s=0.4, horizon_s=240.0)),
        ("fig5", dict(seed=1, day_seconds=1800.0, peak_rate=0.5,
                      n_servers=2)),
    ])
    def test_figure_render_identical(self, tmp_path, name, kwargs):
        from repro.experiments.figures import (
            fig3_user_types_and_contribution,
            fig5_user_evolution,
        )
        from repro.telemetry import sink as sink_mod

        fn = {"fig3": fig3_user_types_and_contribution,
              "fig5": fig5_user_evolution}[name]
        ref = fn(**kwargs)
        root = tmp_path / "spill"
        sink_mod.set_spill_root(root)
        try:
            spilled = fn(**kwargs)
        finally:
            sink_mod.set_spill_root(None)
        assert spilled.render() == ref.render()
        assert any(root.iterdir()), "spill root was configured but unused"


class TestFoldProtocol:
    def test_no_folds_rejected(self, mem_log):
        with pytest.raises(ValueError, match="at least one fold"):
            fold_log(mem_log)

    def test_base_class_is_abstract(self):
        fold = Fold()
        with pytest.raises(NotImplementedError):
            fold.update(None)
        with pytest.raises(NotImplementedError):
            fold.result()

    def test_iter_reports_accepts_plain_iterables(self, mem_log):
        reports = list(mem_log.reports())
        (totals,) = fold_log(reports, UploadTotalsFold())
        assert totals == upload_totals(mem_log)
        assert list(iter_reports(reports)) == reports

    def test_iter_reports_accepts_entry_sources(self, mem_log):
        class EntriesOnly:
            def __init__(self, server):
                self._server = server

            def iter_entries(self):
                return self._server.iter_entries()

        (totals,) = fold_log(EntriesOnly(mem_log), UploadTotalsFold())
        assert totals == upload_totals(mem_log)
