"""Tests for the repro.obs instrumentation layer.

Covers the metrics registry, exporters, trace collector, run manifest,
the ambient-context guards (double session / double attach), and the
engine instrumentation itself.
"""

import json
import math

import pytest

import repro.obs as obs
from repro.obs import context as obs_context
from repro.obs.metrics import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    prometheus_name,
    render_prometheus,
)
from repro.obs.manifest import (
    RunManifest,
    config_fingerprint,
    manifest_path_for,
)
from repro.obs.trace import TraceCollector
from repro.obs.exporters import JsonlMetricsWriter, write_prometheus
from repro.core.config import SystemConfig
from repro.sim.engine import Engine, SimulationError


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test starts and ends with observability off."""
    assert obs.current() is None
    yield
    obs_context.deactivate()


class TestRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5
        assert len(reg) == 1

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_gauge_set_and_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.max(3)
        assert g.value == 10
        g.max(12)
        assert g.value == 12

    def test_histogram_buckets_cumulative(self):
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.cumulative_buckets() == [(1.0, 1), (2.0, 2), (4.0, 3)]
        assert h.total == pytest.approx(105.0)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_histogram_mean_empty_is_nan(self):
        assert math.isnan(Histogram("h").mean)

    def test_timer_context_manager(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        assert reg.timer("t").count == 1
        assert reg.timer("t").total_s >= 0.0

    def test_counter_values_excludes_wall_time(self):
        reg = MetricsRegistry()
        reg.counter("events").inc(7)
        reg.gauge("depth").set(3)
        reg.timer("wall").observe(0.25)
        assert reg.counter_values() == {"events": 7}

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.timer("t").observe(0.02)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["t"]["count"] == 1
        json.dumps(snap)  # must be JSON-serialisable as-is

    def test_null_registry_accepts_everything(self):
        NULL_REGISTRY.counter("a").inc()
        NULL_REGISTRY.gauge("b").set(1)
        NULL_REGISTRY.timer("c").observe(0.1)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == {}


class TestPrometheus:
    def test_name_sanitizing(self):
        assert prometheus_name("engine.events_executed") == \
            "repro_engine_events_executed"
        assert prometheus_name("9lives") == "repro__9lives"

    def test_render_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("events").inc(3)
        reg.gauge("depth").set(5)
        reg.timer("step").observe(0.002)
        text = render_prometheus(reg)
        assert "# TYPE repro_events counter" in text
        assert "repro_events 3" in text
        assert "repro_depth 5" in text
        assert 'repro_step_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_step_seconds_count 1" in text
        assert text.endswith("\n")

    def test_write_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        path = write_prometheus(reg, tmp_path / "metrics.prom")
        assert "repro_x 1" in path.read_text()


class TestTrace:
    def test_complete_events_serialise(self, tmp_path):
        tc = TraceCollector()
        tc.complete("cb", tc.now_us(), 12.5, cat="engine", sim_time=3.0)
        tc.instant("mark")
        tc.counter("peers", {"live": 10})
        obj = tc.to_json_obj()
        phases = [e["ph"] for e in obj["traceEvents"]]
        assert phases == ["M", "X", "i", "C"]
        out = tmp_path / "t.json"
        tc.write(out)
        assert json.loads(out.read_text())["otherData"]["dropped_events"] == 0

    def test_cap_drops_and_counts(self):
        tc = TraceCollector(max_events=2)
        for _ in range(5):
            tc.complete("cb", 0.0, 1.0)
        assert len(tc) == 2
        assert tc.dropped == 3
        assert tc.full

    def test_negative_duration_clamped(self):
        tc = TraceCollector()
        tc.complete("cb", 0.0, -5.0)
        assert tc.to_json_obj()["traceEvents"][-1]["dur"] == 0.0


class TestManifest:
    def test_config_fingerprint_stable_and_sensitive(self):
        a = config_fingerprint(SystemConfig())
        b = config_fingerprint(SystemConfig())
        c = config_fingerprint(SystemConfig(n_servers=7))
        assert a == b
        assert a != c

    def test_hash_ignores_dict_insertion_order(self):
        """Regression: the canonical hash must not depend on the order
        keys were inserted (campaign run keys rely on this)."""
        from repro.obs.manifest import stable_hash

        a = stable_hash({"alpha": 1, "beta": {"y": 2.0, "x": [1, 2]}})
        b = stable_hash({"beta": {"x": [1, 2], "y": 2.0}, "alpha": 1})
        assert a == b
        assert a != stable_hash({"alpha": 1, "beta": {"y": 2.0, "x": [2, 1]}})

    def test_canonical_payload_float_formatting(self):
        from repro.obs.manifest import canonical_payload

        # -0.0 collapses onto 0.0; non-finite floats serialise as tagged
        # strings rather than non-standard JSON tokens
        assert canonical_payload({"x": -0.0}) == canonical_payload({"x": 0.0})
        assert "nan" in canonical_payload(float("nan"))
        assert "inf" in canonical_payload(float("inf"))
        # shortest-repr floats are stable and roundtrip
        assert canonical_payload(0.1) == "0.1"

    def test_fingerprint_ignores_field_order(self):
        """Two equal configs hash equal regardless of how their field
        dicts happen to be ordered internally."""
        import dataclasses

        cfg = SystemConfig()
        d = dataclasses.asdict(cfg)
        reordered = dict(reversed(list(d.items())))
        from repro.obs.manifest import stable_hash

        assert stable_hash(d, length=16) == stable_hash(reordered, length=16)
        assert stable_hash(d, length=16) == config_fingerprint(cfg)

    def test_sidecar_path(self):
        assert str(manifest_path_for("out/m.jsonl")).endswith("m.manifest.json")
        assert str(manifest_path_for("metrics")).endswith(
            "metrics.manifest.json")

    def test_note_seed_first_wins(self):
        m = RunManifest()
        m.note_seed(3)
        m.note_seed(9)
        assert m.seed == 3

    def test_write_contains_provenance(self, tmp_path):
        m = RunManifest(scenario="t", seed=1)
        m.note_config(SystemConfig())
        p = m.write(tmp_path / "m.manifest.json")
        data = json.loads(p.read_text())
        assert data["scenario"] == "t"
        assert data["seed"] == 1
        assert data["config_hash"]
        assert data["wall_time_s"] >= 0
        assert "python" in data and "argv" in data


class TestJsonlWriter:
    def test_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "m.jsonl"
        writer = JsonlMetricsWriter(path)
        reg = MetricsRegistry()
        reg.counter("c").inc()
        writer.snapshot(reg, 1.0)
        reg.counter("c").inc()
        writer.snapshot(reg, 2.0)
        writer.close()
        writer.close()  # idempotent
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["t_sim"] for l in lines] == [1.0, 2.0]
        assert [l["metrics"]["c"] for l in lines] == [1, 2]


class TestContextGuards:
    def test_session_yields_active_context(self):
        with obs.session() as ctx:
            assert obs.current() is ctx
        assert obs.current() is None

    def test_double_session_rejected(self):
        with obs.session():
            with pytest.raises(obs.ObsError):
                with obs.session():
                    pass

    def test_engine_double_attach_rejected(self):
        eng = Engine()
        ctx = obs.ObsContext()
        eng.attach_obs(ctx)
        with pytest.raises(SimulationError):
            eng.attach_obs(ctx)
        eng.detach_obs()
        eng.attach_obs(ctx)  # re-attach after detach is fine

    def test_fastsim_double_attach_rejected(self):
        from repro.fastsim import FastSimulation
        sim = FastSimulation(SystemConfig(n_servers=2), seed=0,
                             capacity_hint=64)
        ctx = obs.ObsContext()
        sim.attach_obs(ctx)
        with pytest.raises(RuntimeError):
            sim.attach_obs(ctx)

    def test_helpers_noop_when_off(self):
        obs.inc("nothing")
        obs.observe("nothing", 1.0)
        obs.set_gauge("nothing", 2.0)
        assert not obs.enabled()

    def test_helpers_record_when_on(self):
        with obs.session() as ctx:
            assert obs.enabled()
            obs.inc("a", 2)
            obs.set_gauge("b", 4.0)
            assert ctx.registry.counter("a").value == 2
            assert ctx.registry.gauge("b").value == 4.0


class TestEngineInstrumentation:
    def test_counters_and_site_timers(self):
        with obs.session() as ctx:
            eng = Engine()

            def tick():
                pass

            for i in range(10):
                eng.schedule(float(i), tick)
            ev = eng.schedule(3.5, tick)
            ev.cancel()
            eng.run()
            counters = ctx.registry.counter_values()
            assert counters["engine.events_executed"] == 10
            assert counters["engine.events_cancelled"] == 1
            site = "TestEngineInstrumentation.test_counters_and_site_timers" \
                   ".<locals>.tick"
            # metrics-only sessions sample site timers (1 event in 64, the
            # first always included); counters above stay exact
            assert ctx.registry.timer(f"engine.callback.{site}").count >= 1
            assert ctx.registry.gauge("engine.heap_depth_max").value >= 1

    def test_traced_session_times_every_event(self, tmp_path):
        with obs.session(trace_path=str(tmp_path / "t.json")) as ctx:
            eng = Engine()

            def tick():
                pass

            for i in range(10):
                eng.schedule(float(i), tick)
            eng.run()
            site = "TestEngineInstrumentation." \
                   "test_traced_session_times_every_event.<locals>.tick"
            assert ctx.registry.timer(f"engine.callback.{site}").count == 10

    def test_trace_spans_emitted(self, tmp_path):
        with obs.session(trace_path=str(tmp_path / "t.json")) as ctx:
            eng = Engine()
            eng.schedule(1.0, lambda: None)
            eng.run()
        data = json.loads((tmp_path / "t.json").read_text())
        spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["cat"] == "engine"
        assert spans[0]["args"]["sim_time"] == 1.0

    def test_outside_session_engine_not_instrumented(self):
        eng = Engine()
        assert eng._obs is None
        eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.events_processed == 1

    def test_cancelled_count_maintained_without_obs(self):
        eng = Engine()
        ev = eng.schedule(1.0, lambda: None)
        ev.cancel()
        eng.schedule(2.0, lambda: None)
        eng.run()
        assert eng.events_cancelled == 1


class TestSessionExport:
    def test_session_writes_all_artefacts(self, tmp_path):
        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "t.json"
        with obs.session(metrics_path=str(metrics), trace_path=str(trace),
                         scenario="unit", seed=42):
            eng = Engine()
            eng.schedule(1.0, lambda: None)
            eng.run()
        assert metrics.exists()
        lines = [json.loads(l) for l in metrics.read_text().splitlines()]
        assert lines[-1]["metrics"]["engine.events_executed"] == 1
        assert json.loads(trace.read_text())["traceEvents"]
        manifest = json.loads((tmp_path / "m.manifest.json").read_text())
        assert manifest["scenario"] == "unit"
        assert manifest["seed"] == 42
        assert manifest["metrics_path"] == str(metrics)

    def test_session_without_metrics_uses_trace_sidecar(self, tmp_path):
        trace = tmp_path / "t.json"
        with obs.session(trace_path=str(trace)):
            pass
        assert (tmp_path / "t.manifest.json").exists()


class TestBatchedCounter:
    def test_shares_total_with_plain_accessor(self):
        reg = obs.MetricsRegistry()
        batched = reg.batched_counter("c")
        batched.inc(3)
        batched.pending += 2  # the hot-loop fast path
        # unflushed increments are visible through the batched view...
        assert batched.value == 5
        # ...and counter_values flushes them into the shared counter
        assert reg.counter_values()["c"] == 5
        assert reg.counter("c").value == 5
        assert batched.pending == 0

    def test_same_instance_per_name(self):
        reg = obs.MetricsRegistry()
        assert reg.batched_counter("x") is reg.batched_counter("x")

    def test_mixed_batched_and_direct_increments(self):
        reg = obs.MetricsRegistry()
        reg.counter("c").inc(10)
        reg.batched_counter("c").inc(4)
        assert reg.counter_values()["c"] == 14

    def test_snapshot_and_prometheus_flush(self):
        reg = obs.MetricsRegistry()
        reg.batched_counter("c").inc(7)
        assert reg.snapshot()["c"] == 7
        reg.batched_counter("c").inc(2)
        assert 'repro_c 9' in obs.render_prometheus(reg)

    def test_null_registry_accepts_batched_calls(self):
        null = obs.NULL_REGISTRY
        c = null.batched_counter("anything")
        c.inc()
        c.pending += 5
        c.flush()
        null.flush_batched()
        assert null.counter_values() == {}


class TestGaugeProviders:
    def test_providers_sampled_at_snapshot_beats(self, tmp_path):
        metrics = tmp_path / "m.jsonl"
        with obs.session(metrics_path=str(metrics)) as ctx:
            ctx.register_gauge_provider("test.level", lambda: 17.5)
        line = json.loads(metrics.read_text().splitlines()[-1])
        assert line["metrics"]["test.level"] == 17.5
        assert line["metrics"]["run.peak_rss_mb"] > 0

    def test_nan_and_raising_providers_skipped(self, tmp_path):
        metrics = tmp_path / "m.jsonl"
        with obs.session(metrics_path=str(metrics)) as ctx:
            ctx.register_gauge_provider("test.nan", lambda: float("nan"))
            def boom() -> float:
                raise RuntimeError("provider died")
            ctx.register_gauge_provider("test.boom", boom)
        line = json.loads(metrics.read_text().splitlines()[-1])
        assert "test.nan" not in line["metrics"]
        assert "test.boom" not in line["metrics"]
