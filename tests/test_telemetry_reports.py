"""Round-trip tests for every report type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.logstring import decode_log_string, encode_log_string
from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    LeaveReason,
    PartnerEvent,
    PartnerOp,
    PartnerReport,
    QoSReport,
    TrafficReport,
    parse_report,
)


def roundtrip(report):
    return parse_report(decode_log_string(encode_log_string(report.to_params())))


class TestActivityReport:
    def test_join_roundtrip(self):
        r = ActivityReport(time=12.5, node_id=7, user_id=3, session_id=9,
                           event=ActivityEvent.JOIN, attempt=2,
                           address_public=False)
        assert roundtrip(r) == r

    def test_leave_with_reason_roundtrip(self):
        r = ActivityReport(time=99.0, node_id=7, user_id=3, session_id=9,
                           event=ActivityEvent.LEAVE,
                           reason=LeaveReason.PROGRAM_END)
        back = roundtrip(r)
        assert back.reason is LeaveReason.PROGRAM_END

    @pytest.mark.parametrize("event", list(ActivityEvent))
    def test_all_events_roundtrip(self, event):
        r = ActivityReport(time=1.0, node_id=1, user_id=1, session_id=1,
                           event=event)
        assert roundtrip(r).event is event

    def test_time_precision_millisecond(self):
        r = ActivityReport(time=1.23456789, node_id=1, user_id=1,
                           session_id=1, event=ActivityEvent.JOIN)
        assert roundtrip(r).time == pytest.approx(1.235, abs=1e-9)


class TestQoSReport:
    def test_full_roundtrip(self):
        r = QoSReport(time=300.0, node_id=5, user_id=2, session_id=8,
                      continuity=0.98765, buffered_seconds=22.5, n_parents=4,
                      playing=True)
        back = roundtrip(r)
        assert back.continuity == pytest.approx(0.98765, abs=1e-4)
        assert back.buffered_seconds == pytest.approx(22.5)
        assert back.n_parents == 4
        assert back.playing

    def test_missing_continuity_roundtrip(self):
        r = QoSReport(time=300.0, node_id=5, user_id=2, session_id=8,
                      continuity=None)
        assert roundtrip(r).continuity is None

    def test_continuity_field_omitted_from_wire(self):
        r = QoSReport(time=1.0, node_id=1, user_id=1, session_id=1)
        assert "ci" not in r.to_params()


class TestTrafficReport:
    def test_roundtrip(self):
        r = TrafficReport(time=600.0, node_id=5, user_id=2, session_id=8,
                          bytes_up=1024.0, bytes_down=4096.0,
                          total_up=2048.0, total_down=8192.0)
        assert roundtrip(r) == r

    def test_bytes_rounded_to_integers(self):
        r = TrafficReport(time=1.0, node_id=1, user_id=1, session_id=1,
                          bytes_up=10.7, bytes_down=0.2)
        back = roundtrip(r)
        assert back.bytes_up == 11.0
        assert back.bytes_down == 0.0


class TestPartnerReport:
    def test_compact_event_encoding(self):
        ev = PartnerEvent(time=12.3, op=PartnerOp.ADD, partner_id=42,
                          incoming=True)
        assert ev.encode() == "12.3:a:42:i"
        assert PartnerEvent.decode(ev.encode()) == ev

    def test_report_with_events_roundtrip(self):
        events = (
            PartnerEvent(1.0, PartnerOp.ADD, 2, incoming=False),
            PartnerEvent(5.5, PartnerOp.DROP, 2, incoming=False),
            PartnerEvent(7.0, PartnerOp.ADD, 9, incoming=True),
        )
        r = PartnerReport(time=300.0, node_id=5, user_id=2, session_id=8,
                          events=events, n_partners=3, n_incoming=1,
                          n_outgoing=4)
        back = roundtrip(r)
        assert back.events == events
        assert back.n_incoming == 1

    def test_empty_events_roundtrip(self):
        r = PartnerReport(time=300.0, node_id=5, user_id=2, session_id=8)
        assert roundtrip(r).events == ()

    def test_pev_field_omitted_when_empty(self):
        r = PartnerReport(time=1.0, node_id=1, user_id=1, session_id=1)
        assert "pev" not in r.to_params()


class TestDispatch:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            parse_report({"type": "mystery", "t": "1"})

    def test_missing_type_rejected(self):
        with pytest.raises(ValueError):
            parse_report({"t": "1"})

    @given(
        t=st.floats(min_value=0, max_value=1e6),
        node=st.integers(0, 10**6),
        user=st.integers(0, 10**6),
        sess=st.integers(0, 10**6),
        cont=st.none() | st.floats(min_value=0.0, max_value=1.0),
        parents=st.integers(0, 8),
        playing=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_qos_roundtrip(self, t, node, user, sess, cont,
                                    parents, playing):
        r = QoSReport(time=t, node_id=node, user_id=user, session_id=sess,
                      continuity=cont, n_parents=parents, playing=playing)
        back = roundtrip(r)
        assert back.node_id == node
        assert back.playing == playing
        if cont is None:
            assert back.continuity is None
        else:
            assert back.continuity == pytest.approx(cont, abs=1e-4)


class TestFastWireEncoding:
    """`to_log_string` fast paths must be bit-identical to the codec."""

    REPORTS = [
        ActivityReport(time=12.5, node_id=7, user_id=3, session_id=9,
                       event=ActivityEvent.JOIN, attempt=2,
                       address_public=False),
        ActivityReport(time=99.0, node_id=7, user_id=3, session_id=9,
                       event=ActivityEvent.LEAVE,
                       reason=LeaveReason.PROGRAM_END),
        QoSReport(time=300.0, node_id=5, user_id=2, session_id=8,
                  continuity=0.98765, buffered_seconds=22.5, n_parents=4,
                  playing=True),
        QoSReport(time=300.0, node_id=5, user_id=2, session_id=8,
                  continuity=None),
        TrafficReport(time=600.0, node_id=5, user_id=2, session_id=8,
                      bytes_up=123456.7, bytes_down=9.2,
                      total_up=1e9, total_down=2.5e9),
        PartnerReport(time=300.0, node_id=5, user_id=2, session_id=8,
                      n_partners=3, n_incoming=1, n_outgoing=2),
        PartnerReport(
            time=300.0, node_id=5, user_id=2, session_id=8,
            events=(PartnerEvent(time=10.0, op=PartnerOp.ADD,
                                 partner_id=42, incoming=True),
                    PartnerEvent(time=20.5, op=PartnerOp.DROP,
                                 partner_id=42, incoming=False)),
            n_partners=1),
    ]

    @pytest.mark.parametrize(
        "report", REPORTS, ids=lambda r: type(r).__name__)
    def test_matches_codec(self, report):
        assert report.to_log_string() == encode_log_string(report.to_params())

    @given(
        t=st.floats(min_value=0, max_value=1e6),
        user=st.integers(0, 10**6),
        attempt=st.integers(1, 9),
        event=st.sampled_from(list(ActivityEvent)),
        reason=st.none() | st.sampled_from(list(LeaveReason)),
        pub=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_activity_matches_codec(self, t, user, attempt, event,
                                             reason, pub):
        r = ActivityReport(time=t, node_id=user + 100_000, user_id=user,
                           session_id=user + 1, event=event, attempt=attempt,
                           address_public=pub, reason=reason)
        assert r.to_log_string() == encode_log_string(r.to_params())
