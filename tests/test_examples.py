"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "media-player-ready time" in out
    assert "contributor-class peers" in out


def test_log_pipeline():
    out = run_example("log_pipeline.py")
    assert "reconstructed" in out
    assert "/log?type=act" in out


def test_adaptation_theory():
    out = run_example("adaptation_theory.py")
    assert "Eq. 3" in out
    assert "Convergence" in out


def test_flash_crowd():
    out = run_example("flash_crowd.py", timeout=600)
    assert "mCache replacement: random" in out
    assert "mCache replacement: age" in out


def test_broadcast_event():
    out = run_example("broadcast_event.py", timeout=600)
    assert "peak concurrent users" in out
    assert "steady continuity" in out


def test_observed_run():
    out = run_example("observed_run.py", timeout=600)
    assert "protocol hot-spot counters" in out
    assert "Chrome trace" in out
    assert "config_hash=" in out


def test_parity_run():
    out = run_example("parity_run.py", timeout=600)
    assert "[detailed]" in out
    assert "[fast]" in out
    assert "PARITY OK" in out


def test_multichannel_evening():
    out = run_example("multichannel_evening.py", timeout=600)
    assert "platform total" in out
    assert "zaps" in out
