"""Tests for the analytical models (Eqs. 3-6 and topology convergence)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.convergence import ConvergenceModel
from repro.model.dynamics import (
    abandon_time,
    catchup_time,
    competition_loss_probability,
    degraded_rate,
    loss_time,
)


class TestEq3Catchup:
    def test_paper_formula(self):
        # t_up = l / (r_up - R/K)
        assert catchup_time(10.0, 3.0, 1.0) == 5.0

    def test_zero_deficit(self):
        assert catchup_time(0.0, 2.0, 1.0) == 0.0

    def test_never_catches_up_rejected(self):
        with pytest.raises(ValueError):
            catchup_time(10.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            catchup_time(10.0, 0.5, 1.0)

    def test_negative_deficit_rejected(self):
        with pytest.raises(ValueError):
            catchup_time(-1.0, 2.0, 1.0)

    @given(l=st.floats(0.1, 1000), surplus=st.floats(0.01, 100))
    @settings(max_examples=100, deadline=None)
    def test_property_inverse_in_surplus(self, l, surplus):
        t = catchup_time(l, 1.0 + surplus, 1.0)
        assert t == pytest.approx(l / surplus)


class TestEq4Abandon:
    def test_paper_formula(self):
        # t_down = l / (R/K - r_down)
        assert abandon_time(10.0, 0.5, 1.0) == 20.0

    def test_requires_degraded_rate(self):
        with pytest.raises(ValueError):
            abandon_time(10.0, 1.0, 1.0)

    def test_faster_degradation_abandons_sooner(self):
        assert abandon_time(10.0, 0.2, 1.0) < abandon_time(10.0, 0.8, 1.0)


class TestEq5DegradedRate:
    @pytest.mark.parametrize("d_p,expected", [(1, 0.5), (2, 2 / 3), (9, 0.9)])
    def test_paper_formula(self, d_p, expected):
        assert degraded_rate(d_p, 1.0) == pytest.approx(expected)

    def test_scales_with_substream_rate(self):
        assert degraded_rate(4, 192_000.0) == pytest.approx(0.8 * 192_000.0)

    def test_invalid_degree_rejected(self):
        with pytest.raises(ValueError):
            degraded_rate(0, 1.0)

    def test_monotone_in_degree(self):
        rates = [degraded_rate(d, 1.0) for d in range(1, 20)]
        assert rates == sorted(rates)


class TestLossTime:
    def test_paper_formula(self):
        # t_lose = (D_p+1)(T_s - t_delta) / (R/K)
        assert loss_time(4, 10.0, 0.0, 1.0) == 50.0
        assert loss_time(4, 10.0, 5.0, 1.0) == 25.0

    def test_deviation_beyond_ts_rejected(self):
        with pytest.raises(ValueError):
            loss_time(4, 10.0, 11.0, 1.0)

    def test_consistency_with_eq4(self):
        """t_lose equals Eq. 4's abandon time at rate r_down(D_p)."""
        for d_p in (1, 3, 7):
            r_down = degraded_rate(d_p, 1.0)
            assert loss_time(d_p, 10.0, 0.0, 1.0) == pytest.approx(
                abandon_time(10.0, r_down, 1.0)
            )


class TestEq6LossProbability:
    def test_uniform_prior_closed_form(self):
        # threshold = T_s - T_a*(R/K)/(D_p+1); uniform prior on [0, T_s]
        p = competition_loss_probability(3, 10.0, 20.0, 1.0)
        # threshold = 10 - 5 = 5 -> P = 1 - 5/10
        assert p == pytest.approx(0.5)

    def test_saturates_at_one(self):
        assert competition_loss_probability(1, 10.0, 100.0, 1.0) == 1.0

    def test_decreasing_in_degree(self):
        ps = [
            competition_loss_probability(d, 10.0, 20.0, 1.0)
            for d in range(1, 30)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(ps, ps[1:]))

    def test_custom_cdf(self):
        # degenerate t_delta == T_s: always loses
        p = competition_loss_probability(
            5, 10.0, 1.0, 1.0, t_delta_cdf=lambda x: 0.0 if x <= 10 else 1.0
        )
        assert p == 1.0

    def test_empirical_samples(self, rng):
        samples = rng.uniform(0, 10.0, 5000)
        p_emp = competition_loss_probability(
            3, 10.0, 20.0, 1.0, t_delta_samples=samples
        )
        assert p_emp == pytest.approx(0.5, abs=0.05)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            competition_loss_probability(
                3, 10.0, 20.0, 1.0, t_delta_samples=np.array([])
            )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            competition_loss_probability(0, 10.0, 20.0, 1.0)
        with pytest.raises(ValueError):
            competition_loss_probability(1, 10.0, -1.0, 1.0)


class TestConvergenceModel:
    def test_transition_matrix_stochastic(self):
        model = ConvergenceModel(0.5, 0.1, 0.6)
        P = model.transition_matrix()
        assert np.allclose(P.sum(axis=1), 1.0)
        assert (P >= 0).all()

    def test_stationary_matches_power_iteration(self):
        model = ConvergenceModel(0.5, 0.1, 0.6)
        P = model.transition_matrix()
        state = np.array([0.5, 0.5])
        for _ in range(500):
            state = state @ P
        assert model.stationary_stable_fraction() == pytest.approx(
            state[0], abs=1e-9
        )

    def test_sticky_stable_parents_dominate(self):
        # children under stable parents rarely move -> high stationary mass
        model = ConvergenceModel(
            p_stable_pick=0.4, p_lose_stable=0.01, p_lose_unstable=0.5
        )
        assert model.stationary_stable_fraction() > 0.9

    def test_transient_converges_monotonically_from_below(self):
        model = ConvergenceModel(0.5, 0.02, 0.5)
        traj = model.transient(initial_stable=0.0, n_rounds=200)
        assert (np.diff(traj) >= -1e-12).all()
        assert traj[-1] == pytest.approx(
            model.stationary_stable_fraction(), abs=0.01
        )

    def test_rounds_to_converge(self):
        model = ConvergenceModel(0.5, 0.02, 0.5)
        rounds = model.rounds_to_converge(0.0, tolerance=0.05)
        assert 0 < rounds < 200

    def test_frozen_chain_reports_pick_probability(self):
        model = ConvergenceModel(0.7, 0.0, 0.0)
        assert model.stationary_stable_fraction() == 0.7

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ConvergenceModel(1.2, 0.1, 0.1)

    def test_from_populations_sane(self):
        model = ConvergenceModel.from_populations(0.3)
        assert 0.0 < model.p_stable_pick <= 1.0
        assert model.p_lose_unstable > model.p_lose_stable
        assert model.stationary_stable_fraction() > 0.5

    def test_from_populations_validates(self):
        with pytest.raises(ValueError):
            ConvergenceModel.from_populations(0.0)

    def test_transient_validation(self):
        model = ConvergenceModel(0.5, 0.1, 0.5)
        with pytest.raises(ValueError):
            model.transient(1.5, 10)
        with pytest.raises(ValueError):
            model.transient(0.5, -1)
