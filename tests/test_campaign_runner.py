"""Tests for the campaign executor: caching, retries, timeouts, pooling."""

import pytest

from repro.campaign import (
    ResultStore,
    run_campaign,
    sweep,
    to_replication,
    sweep_series,
    write_metrics_json,
)
from repro.campaign.registry import (
    UnknownExperimentError,
    experiment_ref,
    resolve_experiment,
)
from repro.experiments.figures import fig9_size_point
from repro.experiments.replication import replicate

QUICK = "tests.campaign_helpers:quick_experiment"


def quick_sweep(seeds=(0, 1, 2, 3), **kwargs):
    return sweep(QUICK, seeds=list(seeds), code_version=None, **kwargs)


class TestRegistry:
    def test_registry_name_resolves(self):
        assert resolve_experiment("fig9_size") is fig9_size_point

    def test_module_path_resolves(self):
        fn = resolve_experiment(QUICK)
        assert fn(seed=2).metrics["value"] == 12.0

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownExperimentError):
            resolve_experiment("not-an-experiment")
        with pytest.raises(UnknownExperimentError):
            resolve_experiment("tests.campaign_helpers:nope")
        with pytest.raises(UnknownExperimentError):
            resolve_experiment("no.such.module:fn")

    def test_experiment_ref_roundtrips(self):
        assert experiment_ref(fig9_size_point) == "fig9_size"
        from tests.campaign_helpers import quick_experiment

        assert experiment_ref(quick_experiment) == QUICK

    def test_experiment_ref_rejects_closures(self):
        def local(*, seed):  # pragma: no cover - never called
            pass

        with pytest.raises(UnknownExperimentError):
            experiment_ref(local)


class TestRunCampaign:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_executes_all_runs(self, tmp_path, jobs):
        store = ResultStore(tmp_path / "store")
        report = run_campaign(quick_sweep(), store, jobs=jobs)
        assert report.ok
        assert report.executed == 4 and report.cached == 0
        values = sorted(r.metrics["value"] for r in report.results)
        assert values == [10.0, 11.0, 12.0, 13.0]

    def test_rerun_served_entirely_from_cache(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = quick_sweep()
        first = run_campaign(spec, store, jobs=1)
        second = run_campaign(spec, store, jobs=2)
        assert first.executed == 4
        assert second.executed == 0 and second.cached == 4
        assert [r.metrics for r in first.results] == \
            [r.metrics for r in second.results]

    def test_force_bypasses_cache(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = quick_sweep()
        run_campaign(spec, store, jobs=1)
        again = run_campaign(spec, store, jobs=1, force=True)
        assert again.executed == 4 and again.cached == 0

    def test_without_store_is_ephemeral(self):
        report = run_campaign(quick_sweep(), store=None, jobs=1)
        assert report.ok and report.executed == 4

    def test_overrides_reach_the_experiment(self, tmp_path):
        spec = sweep(QUICK, seeds=[0], overrides={"offset": 5.0},
                     code_version=None)
        report = run_campaign(spec, ResultStore(tmp_path), jobs=1)
        assert report.results[0].metrics["value"] == 15.0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_deterministic_failure_fails_fast(self, tmp_path, jobs):
        spec = sweep("tests.campaign_helpers:broken_experiment",
                     seeds=[0, 1], code_version=None)
        report = run_campaign(spec, ResultStore(tmp_path), jobs=jobs,
                              retries=3)
        assert report.failed == 2 and not report.ok
        failed = [r for r in report.results if r.status == "failed"]
        assert all(r.attempts == 1 for r in failed)  # ValueError: no retry
        assert "deterministic failure" in failed[0].error

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failure_retries_with_backoff(self, tmp_path, jobs):
        counter = tmp_path / "counter.txt"
        spec = sweep(
            "tests.campaign_helpers:flaky_experiment", seeds=[0],
            overrides={"counter_file": str(counter), "fail_times": 2},
            code_version=None,
        )
        report = run_campaign(spec, ResultStore(tmp_path / "s"), jobs=jobs,
                              retries=3, backoff_s=0.01)
        assert report.ok
        (result,) = report.results
        assert result.attempts == 3
        assert result.metrics["attempts"] == 3.0

    def test_retries_exhausted_fails(self, tmp_path):
        counter = tmp_path / "counter.txt"
        spec = sweep(
            "tests.campaign_helpers:flaky_experiment", seeds=[0],
            overrides={"counter_file": str(counter), "fail_times": 5},
            code_version=None,
        )
        report = run_campaign(spec, ResultStore(tmp_path / "s"), jobs=1,
                              retries=1, backoff_s=0.01)
        assert report.failed == 1
        assert report.results[0].attempts == 2

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_per_run_timeout(self, tmp_path, jobs):
        spec = sweep("tests.campaign_helpers:sleepy_experiment",
                     seeds=[0], overrides={"sleep_s": 30.0},
                     code_version=None)
        report = run_campaign(spec, ResultStore(tmp_path), jobs=jobs,
                              timeout_s=0.3, retries=0)
        assert report.failed == 1
        assert "RunTimeout" in report.results[0].error

    def test_journal_records_lifecycle(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = quick_sweep(seeds=(0, 1))
        run_campaign(spec, store, jobs=1)
        events = [r["event"] for r in store.read_journal()]
        assert events.count("start") == 2
        assert events.count("done") == 2
        assert events[0] == "campaign-start"
        assert events[-1] == "campaign-end"
        run_campaign(spec, store, jobs=1)
        events = [r["event"] for r in store.read_journal()]
        assert events.count("cached") == 2

    def test_progress_heartbeat_line(self, tmp_path):
        import io

        stream = io.StringIO()
        run_campaign(quick_sweep(seeds=(0, 1)), None, jobs=1,
                     progress=True, stream=stream)
        out = stream.getvalue()
        assert "[campaign]" in out
        assert "2/2" in out


class TestAggregation:
    def test_to_replication_matches_sequential_replicate(self, tmp_path):
        from tests.campaign_helpers import quick_experiment

        report = run_campaign(quick_sweep(), ResultStore(tmp_path), jobs=2)
        via_campaign = to_replication(report, name="quick")
        sequential = replicate(quick_experiment, seeds=(0, 1, 2, 3),
                               name="quick")
        assert via_campaign.seeds == sequential.seeds
        assert via_campaign.samples == sequential.samples
        assert via_campaign.summaries == sequential.summaries

    def test_sweep_series_orders_and_aggregates(self, tmp_path):
        spec = sweep(QUICK, seeds=[0, 1],
                     grid={"offset": [4.0, 2.0]}, code_version=None)
        report = run_campaign(spec, ResultStore(tmp_path), jobs=1)
        xs, summaries = sweep_series(report, "offset", "value")
        assert xs == [2.0, 4.0]
        assert summaries[0].mean == pytest.approx(12.5)  # seeds 0,1 + 2.0
        assert summaries[1].mean == pytest.approx(14.5)

    def test_write_metrics_json_artifact(self, tmp_path):
        import json

        report = run_campaign(quick_sweep(seeds=(0, 1)),
                              ResultStore(tmp_path / "s"), jobs=1)
        path = write_metrics_json(report, tmp_path / "out" / "artifact.json")
        data = json.loads(path.read_text())
        assert data["counts"] == {"total": 2, "executed": 2, "cached": 0,
                                  "failed": 0}
        assert len(data["runs"]) == 2
        assert data["runs"][0]["metrics"]["value"] == 10.0

    def test_mixed_experiments_require_selector(self, tmp_path):
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec.from_dict({
            "name": "mixed",
            "entries": [
                {"experiment": QUICK, "seeds": [0]},
                {"experiment": "tests.campaign_helpers:busy_experiment",
                 "seeds": [0], "overrides": {"spin_s": 0.01}},
            ],
        }, code_version=None)
        report = run_campaign(spec, None, jobs=1)
        with pytest.raises(ValueError, match="mixes experiments"):
            to_replication(report)
        rep = to_replication(report, experiment=QUICK)
        assert rep.get("value").n == 1


class TestReplicateRouting:
    def test_replicate_jobs_matches_inprocess(self):
        from tests.campaign_helpers import quick_experiment

        seq = replicate(quick_experiment, seeds=(0, 1, 2))
        par = replicate(quick_experiment, seeds=(0, 1, 2), jobs=2)
        assert par.samples == seq.samples
        assert par.summaries == seq.summaries

    def test_replicate_accepts_registry_name(self):
        rep = replicate("model", seeds=(0, 1))
        assert rep.get("eq6_max_abs_error").n == 2

    def test_replicate_with_store_caches(self, tmp_path):
        from tests.campaign_helpers import quick_experiment

        store = ResultStore(tmp_path)
        replicate(quick_experiment, seeds=(0, 1), store=store)
        events = [r["event"] for r in store.read_journal()]
        assert events.count("done") == 2
        replicate(quick_experiment, seeds=(0, 1), store=store)
        events = [r["event"] for r in store.read_journal()]
        assert events.count("cached") == 2

    def test_replicate_jobs_propagates_failure(self):
        with pytest.raises(RuntimeError, match="replication campaign failed"):
            replicate("tests.campaign_helpers:broken_experiment",
                      seeds=(0,), jobs=2)

    def test_replicate_rejects_unimportable_callable(self):
        def local(*, seed):  # pragma: no cover - never called
            pass

        with pytest.raises(UnknownExperimentError):
            replicate(local, seeds=(0,), jobs=2)
