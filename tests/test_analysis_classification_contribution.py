"""Tests for the Section V.B classifier and contribution analysis."""

import numpy as np
import pytest

from repro.analysis.classification import (
    UserType,
    classify_users,
    expected_user_type,
    type_distribution,
)
from repro.analysis.contribution import (
    contribution_by_type,
    contributor_class_share,
    lorenz_curve,
    top_contributor_share,
    upload_shares,
    upload_totals,
)
from repro.network.connectivity import ConnectivityClass
from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    PartnerReport,
    TrafficReport,
)
from repro.telemetry.server import LogServer


def add_node(server, node_id, *, public, incoming, outgoing, upload=0.0):
    server.receive_report(0.0, ActivityReport(
        time=0.0, node_id=node_id, user_id=node_id, session_id=node_id,
        event=ActivityEvent.JOIN, address_public=public,
    ))
    server.receive_report(300.0, PartnerReport(
        time=300.0, node_id=node_id, user_id=node_id, session_id=node_id,
        n_partners=incoming + outgoing, n_incoming=incoming,
        n_outgoing=outgoing,
    ))
    if upload:
        server.receive_report(300.0, TrafficReport(
            time=300.0, node_id=node_id, user_id=node_id, session_id=node_id,
            bytes_up=upload, bytes_down=0.0, total_up=upload, total_down=0.0,
        ))


class TestClassifier:
    def test_four_quadrants(self):
        server = LogServer()
        add_node(server, 1, public=True, incoming=3, outgoing=2)   # direct
        add_node(server, 2, public=False, incoming=1, outgoing=4)  # upnp
        add_node(server, 3, public=False, incoming=0, outgoing=5)  # nat
        add_node(server, 4, public=True, incoming=0, outgoing=5)   # firewall
        types = classify_users(server)
        assert types == {
            1: UserType.DIRECT, 2: UserType.UPNP,
            3: UserType.NAT, 4: UserType.FIREWALL,
        }

    def test_misclassification_without_incoming(self):
        """A public peer that never received an incoming partnership is
        (mis)classified as firewalled -- the paper's 'errors can occur'."""
        server = LogServer()
        add_node(server, 1, public=True, incoming=0, outgoing=3)
        assert classify_users(server)[1] is UserType.FIREWALL

    def test_node_with_only_activity_report(self):
        server = LogServer()
        server.receive_report(0.0, ActivityReport(
            time=0.0, node_id=1, user_id=1, session_id=1,
            event=ActivityEvent.JOIN, address_public=False,
        ))
        assert classify_users(server)[1] is UserType.NAT

    def test_event_series_reveals_direction(self):
        from repro.telemetry.reports import PartnerEvent, PartnerOp
        server = LogServer()
        server.receive_report(0.0, ActivityReport(
            time=0.0, node_id=1, user_id=1, session_id=1,
            event=ActivityEvent.JOIN, address_public=False,
        ))
        server.receive_report(300.0, PartnerReport(
            time=300.0, node_id=1, user_id=1, session_id=1,
            events=(PartnerEvent(10.0, PartnerOp.ADD, 5, incoming=True),),
        ))
        assert classify_users(server)[1] is UserType.UPNP

    def test_expected_mapping(self):
        assert expected_user_type(ConnectivityClass.DIRECT) is UserType.DIRECT
        assert expected_user_type(ConnectivityClass.NAT) is UserType.NAT

    def test_type_distribution_sums_to_one(self):
        server = LogServer()
        add_node(server, 1, public=True, incoming=1, outgoing=1)
        add_node(server, 2, public=False, incoming=0, outgoing=1)
        dist = type_distribution(classify_users(server))
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_empty_distribution(self):
        assert all(v == 0.0 for v in type_distribution({}).values())

    def test_contributor_flag(self):
        assert UserType.DIRECT.is_contributor
        assert UserType.UPNP.is_contributor
        assert not UserType.NAT.is_contributor


class TestContribution:
    def test_upload_totals_take_latest_cumulative(self):
        server = LogServer()
        for t, total in ((300.0, 100.0), (600.0, 250.0)):
            server.receive_report(t, TrafficReport(
                time=t, node_id=1, user_id=1, session_id=1,
                bytes_up=0.0, bytes_down=0.0, total_up=total, total_down=0.0,
            ))
        assert upload_totals(server) == {1: 250.0}

    def test_upload_shares_sum_to_one(self):
        server = LogServer()
        add_node(server, 1, public=True, incoming=1, outgoing=1, upload=300.0)
        add_node(server, 2, public=False, incoming=0, outgoing=1, upload=100.0)
        shares = upload_shares(server)
        assert shares[1] == pytest.approx(0.75)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_fig3_pairing(self):
        server = LogServer()
        add_node(server, 1, public=True, incoming=2, outgoing=2, upload=800.0)
        add_node(server, 2, public=False, incoming=0, outgoing=2, upload=100.0)
        add_node(server, 3, public=False, incoming=0, outgoing=2, upload=100.0)
        per_type = contribution_by_type(server)
        pop, byt = per_type[UserType.DIRECT]
        assert pop == pytest.approx(1 / 3)
        assert byt == pytest.approx(0.8)
        cpop, cbyt = contributor_class_share(server)
        assert cpop == pytest.approx(1 / 3)
        assert cbyt == pytest.approx(0.8)

    def test_lorenz_curve_endpoints(self):
        x, y = lorenz_curve([1.0, 2.0, 3.0])
        assert x[0] == 0.0 and x[-1] == 1.0
        assert y[0] == 0.0 and y[-1] == pytest.approx(1.0)

    def test_lorenz_convexity(self):
        _x, y = lorenz_curve([1, 1, 1, 50])
        assert (np.diff(y, 2) >= -1e-12).all()

    def test_lorenz_zero_uploads(self):
        _x, y = lorenz_curve([0.0, 0.0])
        assert (y == 0.0).all()

    def test_lorenz_rejects_negative(self):
        with pytest.raises(ValueError):
            lorenz_curve([-1.0])

    def test_top_contributor_share(self):
        # top 25% (1 of 4) holds 70/100
        assert top_contributor_share([70, 10, 10, 10], 0.25) == pytest.approx(0.7)

    def test_top_share_bounds(self):
        with pytest.raises(ValueError):
            top_contributor_share([1.0], 0.0)
        with pytest.raises(ValueError):
            top_contributor_share([], 0.5)
