"""Tests for the rendering helpers and (small-scale) figure functions."""


from repro.experiments import table1, validate_dynamics_equations
from repro.experiments.render import (
    FigureResult,
    render_cdf_table,
    render_series,
    render_table,
    sparkline,
)


class TestRenderTable:
    def test_alignment(self):
        out = render_table(("a", "bbbb"), [("x", 1), ("yy", 22)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_contents_present(self):
        out = render_table(("col",), [("value",)])
        assert "col" in out and "value" in out


class TestSparkline:
    def test_constant_series(self):
        s = sparkline([5.0, 5.0, 5.0])
        assert len(s) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_renders_as_space(self):
        s = sparkline([1.0, float("nan"), 2.0])
        assert s[1] == " "

    def test_long_series_bucketed_to_width(self):
        s = sparkline(list(range(1000)), width=50)
        assert len(s) == 50

    def test_monotone_series_monotone_glyphs(self):
        bars = " .:-=+*#%@"
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
        levels = [bars.index(ch) for ch in s]
        assert levels == sorted(levels)

    def test_render_series_contains_extremes(self):
        out = render_series("x", [0, 1, 2], [1.0, 5.0, 3.0])
        assert "min=1" in out and "max=5" in out

    def test_render_cdf_table(self):
        out = render_cdf_table("T", [1.0, 2.0], [0.25, 1.0])
        assert "0.250" in out and "1.000" in out


class TestFigureResult:
    def test_render_includes_everything(self):
        fr = FigureResult("Fig. X", "Title")
        fr.add_block("BLOCK")
        fr.metrics["m"] = 1.2345
        fr.note("NOTE")
        out = fr.render()
        assert "Fig. X" in out and "Title" in out
        assert "BLOCK" in out
        assert "m = 1.234" in out
        assert "note: NOTE" in out


class TestFigureFunctions:
    def test_table1_metrics(self):
        result = table1()
        assert result.metrics["R_kbps"] == 768
        assert result.metrics["K"] == 4
        assert "T_s" in result.render()

    def test_dynamics_validation_accuracy(self):
        result = validate_dynamics_equations()
        # Eq. 3 micro-sim within 15% of the closed form
        assert result.metrics["eq3_max_rel_error"] < 0.15
        # Eq. 6 Monte Carlo within 2% absolute
        assert result.metrics["eq6_max_abs_error"] < 0.02
