"""Unit tests for connectivity classes and the partnership-direction rule."""

import numpy as np
import pytest

from repro.network.connectivity import (
    ConnectivityClass,
    ConnectivityMix,
    can_accept_incoming,
    can_establish,
)


class TestClasses:
    def test_public_address_classes(self):
        assert ConnectivityClass.DIRECT.has_public_address
        assert ConnectivityClass.FIREWALL.has_public_address
        assert ConnectivityClass.SERVER.has_public_address
        assert not ConnectivityClass.UPNP.has_public_address
        assert not ConnectivityClass.NAT.has_public_address

    def test_incoming_acceptance(self):
        assert can_accept_incoming(ConnectivityClass.DIRECT)
        assert can_accept_incoming(ConnectivityClass.UPNP)
        assert can_accept_incoming(ConnectivityClass.SERVER)
        assert not can_accept_incoming(ConnectivityClass.NAT)
        assert not can_accept_incoming(ConnectivityClass.FIREWALL)

    def test_contributor_classes(self):
        contributors = {c for c in ConnectivityClass if c.is_contributor_class}
        assert contributors == {
            ConnectivityClass.DIRECT,
            ConnectivityClass.UPNP,
            ConnectivityClass.SERVER,
        }

    def test_accepts_incoming_property_matches_function(self):
        for c in ConnectivityClass:
            assert c.accepts_incoming == can_accept_incoming(c)


class TestEstablishment:
    @pytest.mark.parametrize("initiator", list(ConnectivityClass))
    def test_anyone_can_reach_direct(self, initiator):
        assert can_establish(initiator, ConnectivityClass.DIRECT)

    @pytest.mark.parametrize("initiator", list(ConnectivityClass))
    def test_anyone_can_reach_upnp(self, initiator):
        assert can_establish(initiator, ConnectivityClass.UPNP)

    @pytest.mark.parametrize(
        "target", [ConnectivityClass.NAT, ConnectivityClass.FIREWALL]
    )
    def test_unreachable_without_traversal(self, target):
        assert not can_establish(ConnectivityClass.NAT, target)
        assert not can_establish(ConnectivityClass.DIRECT, target)

    def test_traversal_requires_rng(self):
        with pytest.raises(ValueError):
            can_establish(
                ConnectivityClass.NAT, ConnectivityClass.NAT,
                nat_traversal_prob=0.5,
            )

    def test_traversal_probability_one_always_succeeds(self, rng):
        assert can_establish(
            ConnectivityClass.NAT, ConnectivityClass.NAT,
            nat_traversal_prob=1.0, rng=rng,
        )

    def test_traversal_statistics(self, rng):
        hits = sum(
            can_establish(
                ConnectivityClass.NAT, ConnectivityClass.FIREWALL,
                nat_traversal_prob=0.3, rng=rng,
            )
            for _ in range(3000)
        )
        assert 0.25 < hits / 3000 < 0.35


class TestMix:
    def test_default_mix_sums_to_one(self):
        mix = ConnectivityMix()
        assert np.isclose(sum(mix.fractions.values()), 1.0)

    def test_default_contributor_fraction_around_30pct(self):
        # Fig. 3a: "30% or so" of peers are direct + UPnP
        assert 0.2 <= ConnectivityMix().contributor_fraction <= 0.4

    def test_invalid_sum_rejected(self):
        with pytest.raises(ValueError):
            ConnectivityMix(fractions={
                ConnectivityClass.DIRECT: 0.5,
                ConnectivityClass.NAT: 0.2,
            })

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            ConnectivityMix(fractions={
                ConnectivityClass.DIRECT: 1.3,
                ConnectivityClass.NAT: -0.3,
            })

    def test_server_class_not_samplable(self):
        with pytest.raises(ValueError):
            ConnectivityMix(fractions={
                ConnectivityClass.SERVER: 0.5,
                ConnectivityClass.NAT: 0.5,
            })

    def test_sample_many_respects_fractions(self, rng):
        mix = ConnectivityMix(fractions={
            ConnectivityClass.DIRECT: 0.7,
            ConnectivityClass.NAT: 0.3,
        })
        samples = mix.sample_many(5000, rng)
        frac_direct = sum(
            1 for c in samples if c is ConnectivityClass.DIRECT
        ) / 5000
        assert 0.65 < frac_direct < 0.75

    def test_sample_returns_single_class(self, rng):
        assert isinstance(ConnectivityMix().sample(rng), ConnectivityClass)

    def test_degenerate_mix(self, rng):
        mix = ConnectivityMix(fractions={ConnectivityClass.NAT: 1.0})
        assert all(
            c is ConnectivityClass.NAT for c in mix.sample_many(20, rng)
        )
