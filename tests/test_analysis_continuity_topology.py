"""Tests for continuity aggregation and overlay-topology analysis."""

import numpy as np
import pytest

from repro.analysis.classification import UserType
from repro.analysis.continuity import (
    continuity_by_type,
    continuity_samples,
    continuity_timeseries,
    mean_continuity,
)
from repro.analysis.topology import snapshot_overlay
from repro.telemetry.reports import QoSReport
from repro.telemetry.server import LogServer


def qos(server, node_id, t, continuity, playing=True):
    server.receive_report(t, QoSReport(
        time=t, node_id=node_id, user_id=node_id, session_id=node_id,
        continuity=continuity, playing=playing,
    ))


class TestContinuityAggregation:
    def test_samples_skip_missing_continuity(self):
        server = LogServer()
        qos(server, 1, 300.0, 0.9)
        qos(server, 2, 300.0, None)
        assert len(continuity_samples(server)) == 1

    def test_playing_only_filter(self):
        server = LogServer()
        qos(server, 1, 300.0, 0.9, playing=False)
        assert continuity_samples(server) == []
        assert len(continuity_samples(server, playing_only=False)) == 1

    def test_timeseries_binning(self):
        server = LogServer()
        qos(server, 1, 100.0, 0.8)
        qos(server, 2, 150.0, 1.0)
        qos(server, 1, 400.0, 0.5)
        centers, means, counts = continuity_timeseries(
            server, bin_s=300.0, t1=600.0
        )
        assert means[0] == pytest.approx(0.9)
        assert means[1] == pytest.approx(0.5)

    def test_timeseries_empty_log_raises(self):
        with pytest.raises(ValueError):
            continuity_timeseries(LogServer())

    def test_mean_continuity_with_warmup_exclusion(self):
        server = LogServer()
        qos(server, 1, 100.0, 0.2)
        qos(server, 1, 500.0, 1.0)
        assert mean_continuity(server) == pytest.approx(0.6)
        assert mean_continuity(server, after=300.0) == pytest.approx(1.0)

    def test_mean_continuity_by_type(self):
        server = LogServer()
        qos(server, 1, 300.0, 0.9)
        qos(server, 2, 300.0, 0.5)
        types = {1: UserType.DIRECT, 2: UserType.NAT}
        assert mean_continuity(server, types=types,
                               user_type=UserType.DIRECT) == 0.9
        assert mean_continuity(server, types=types,
                               user_type=UserType.NAT) == 0.5

    def test_mean_continuity_empty_is_nan(self):
        assert np.isnan(mean_continuity(LogServer()))

    def test_by_type_series(self):
        server = LogServer()
        qos(server, 1, 100.0, 0.9)
        qos(server, 2, 100.0, 0.7)
        types = {1: UserType.DIRECT, 2: UserType.NAT}
        series = continuity_by_type(server, bin_s=300.0, types=types, t1=300.0)
        assert set(series) == {UserType.DIRECT, UserType.NAT}
        assert series[UserType.DIRECT][1][0] == pytest.approx(0.9)


class TestTopologySnapshots:
    def test_snapshot_counts_peers_not_servers(self, populated_system):
        snap = snapshot_overlay(populated_system)
        assert snap.n_peers == populated_system.concurrent_users

    def test_contributor_parent_fraction_in_bounds(self, populated_system):
        snap = snapshot_overlay(populated_system)
        frac = snap.contributor_parent_fraction()
        assert 0.0 <= frac <= 1.0

    def test_random_links_rare(self, populated_system):
        snap = snapshot_overlay(populated_system)
        frac = snap.random_link_fraction()
        assert np.isnan(frac) or frac < 0.5

    def test_depths_positive_and_reachable(self, populated_system):
        snap = snapshot_overlay(populated_system)
        depths = snap.depth_distribution()
        reachable = {d: n for d, n in depths.items() if d >= 0}
        assert sum(reachable.values()) >= 0.9 * snap.n_peers
        assert all(d >= 2 for d in reachable)  # source -> server -> peer

    def test_mean_depth_at_least_two(self, populated_system):
        assert snapshot_overlay(populated_system).mean_depth() >= 2.0

    def test_edge_weights_count_substreams(self, populated_system):
        snap = snapshot_overlay(populated_system)
        k = populated_system.cfg.n_substreams
        for _p, _c, data in snap.graph.edges(data=True):
            assert 1 <= data["substreams"] <= k

    def test_out_degree_by_class_servers_dominate(self, populated_system):
        from repro.network.connectivity import ConnectivityClass
        degs = snapshot_overlay(populated_system).out_degree_by_class()
        assert degs[ConnectivityClass.SERVER] == max(degs.values())
