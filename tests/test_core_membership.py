"""Unit tests for the mCache and its replacement policies."""

import numpy as np
import pytest

from repro.core.membership import MCache, MCacheEntry, ReplacementPolicy
from repro.network.connectivity import ConnectivityClass


def entry(node_id, joined_at=0.0, cls=ConnectivityClass.DIRECT):
    return MCacheEntry(
        node_id=node_id, connectivity=cls, joined_at=joined_at, last_seen=joined_at
    )


class TestBasics:
    def test_insert_and_contains(self, rng):
        cache = MCache(owner_id=1, capacity=4)
        assert cache.insert(entry(2), now=1.0, rng=rng)
        assert 2 in cache
        assert len(cache) == 1

    def test_owner_never_stored(self, rng):
        cache = MCache(owner_id=1, capacity=4)
        assert not cache.insert(entry(1), now=1.0, rng=rng)
        assert 1 not in cache

    def test_reinsert_refreshes_not_duplicates(self, rng):
        cache = MCache(owner_id=1, capacity=4)
        cache.insert(entry(2, joined_at=0.0), now=1.0, rng=rng)
        cache.insert(entry(2, joined_at=5.0), now=10.0, rng=rng)
        assert len(cache) == 1
        stored = cache.entries()[0]
        assert stored.last_seen == 10.0
        # earliest join time is kept (it is the node's true age)
        assert stored.joined_at == 0.0

    def test_remove_idempotent(self, rng):
        cache = MCache(owner_id=1, capacity=4)
        cache.insert(entry(2), now=0.0, rng=rng)
        cache.remove(2)
        cache.remove(2)
        assert 2 not in cache

    def test_insert_many_counts(self, rng):
        cache = MCache(owner_id=1, capacity=8)
        n = cache.insert_many([entry(i) for i in range(2, 7)], now=0.0, rng=rng)
        assert n == 5

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MCache(owner_id=1, capacity=0)


class TestRandomReplacement:
    def test_full_cache_still_accepts_newcomer(self, rng):
        cache = MCache(owner_id=0, capacity=3, policy=ReplacementPolicy.RANDOM)
        for i in range(1, 4):
            cache.insert(entry(i), now=0.0, rng=rng)
        assert cache.insert(entry(99), now=1.0, rng=rng)
        assert 99 in cache
        assert len(cache) == 3

    def test_random_policy_requires_rng(self):
        cache = MCache(owner_id=0, capacity=1, policy=ReplacementPolicy.RANDOM)
        cache.insert(entry(1), now=0.0, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            cache.insert(entry(2), now=0.0)

    def test_flash_crowd_poisons_random_cache(self, rng):
        """The Section V.C pathology: a storm of young entries displaces
        the old stable ones under random replacement."""
        cache = MCache(owner_id=0, capacity=10, policy=ReplacementPolicy.RANDOM)
        for i in range(1, 11):
            cache.insert(entry(i, joined_at=0.0), now=0.0, rng=rng)
        # 100 newcomers at t=1000
        for i in range(100, 200):
            cache.insert(entry(i, joined_at=1000.0), now=1000.0, rng=rng)
        assert cache.mean_entry_age(now=1000.0) < 100.0


class TestAgeReplacement:
    def test_old_entry_displaces_youngest(self, rng):
        cache = MCache(owner_id=0, capacity=2, policy=ReplacementPolicy.AGE)
        cache.insert(entry(1, joined_at=100.0), now=100.0, rng=rng)
        cache.insert(entry(2, joined_at=200.0), now=200.0, rng=rng)
        assert cache.insert(entry(3, joined_at=50.0), now=300.0, rng=rng)
        assert 2 not in cache  # youngest evicted
        assert 1 in cache and 3 in cache

    def test_young_entry_rejected_when_full(self, rng):
        cache = MCache(owner_id=0, capacity=2, policy=ReplacementPolicy.AGE)
        cache.insert(entry(1, joined_at=0.0), now=0.0, rng=rng)
        cache.insert(entry(2, joined_at=10.0), now=10.0, rng=rng)
        assert not cache.insert(entry(3, joined_at=500.0), now=500.0, rng=rng)
        assert 3 not in cache

    def test_age_cache_resists_flash_crowd(self, rng):
        cache = MCache(owner_id=0, capacity=10, policy=ReplacementPolicy.AGE)
        for i in range(1, 11):
            cache.insert(entry(i, joined_at=0.0), now=0.0, rng=rng)
        for i in range(100, 200):
            cache.insert(entry(i, joined_at=1000.0), now=1000.0, rng=rng)
        assert cache.mean_entry_age(now=1000.0) == 1000.0


class TestSampling:
    def test_sample_size_bounded_by_population(self, rng):
        cache = MCache(owner_id=0, capacity=8)
        for i in range(1, 4):
            cache.insert(entry(i), now=0.0, rng=rng)
        assert len(cache.sample(10, rng)) == 3

    def test_sample_distinct(self, rng):
        cache = MCache(owner_id=0, capacity=16)
        for i in range(1, 11):
            cache.insert(entry(i), now=0.0, rng=rng)
        got = cache.sample(10, rng)
        assert len({e.node_id for e in got}) == 10

    def test_sample_respects_exclusion(self, rng):
        cache = MCache(owner_id=0, capacity=8)
        for i in range(1, 6):
            cache.insert(entry(i), now=0.0, rng=rng)
        got = cache.sample(5, rng, exclude=[1, 2])
        assert {e.node_id for e in got} <= {3, 4, 5}

    def test_sample_empty_cache(self, rng):
        assert MCache(owner_id=0, capacity=4).sample(3, rng) == []

    def test_gossip_payload_includes_self_entry(self, rng):
        cache = MCache(owner_id=0, capacity=8)
        cache.insert(entry(1), now=0.0, rng=rng)
        me = entry(0)
        payload = cache.gossip_payload(4, rng, self_entry=me)
        assert payload[0] is me


class TestEntry:
    def test_age(self):
        e = entry(1, joined_at=10.0)
        assert e.age(now=35.0) == 25.0
        assert e.age(now=5.0) == 0.0  # clock skew clamped

    def test_refreshed(self):
        e = entry(1, joined_at=10.0)
        r = e.refreshed(now=99.0)
        assert r.last_seen == 99.0
        assert r.joined_at == 10.0

    def test_mean_entry_age_empty(self):
        assert MCache(owner_id=0, capacity=4).mean_entry_age(0.0) == 0.0
