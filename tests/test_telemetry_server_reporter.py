"""Tests for the log server and the client-side reporter."""

import io

import pytest

from repro.sim.engine import Engine
from repro.telemetry.reporter import NodeReporter
from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    PartnerOp,
    PartnerReport,
    QoSReport,
    TrafficReport,
)
from repro.telemetry.server import LogEntry, LogServer


def mk_status(now=0.0):
    header = dict(time=now, node_id=1, user_id=1, session_id=1)
    return (
        QoSReport(**header, continuity=0.99),
        TrafficReport(**header, bytes_up=1, bytes_down=2),
        PartnerReport(**header),
    )


class TestLogServer:
    def test_receive_valid_string(self):
        server = LogServer()
        assert server.receive(1.0, "/log?type=act&t=1&node=1&user=1&sess=1&ev=join")
        assert len(server) == 1

    def test_malformed_counted_not_stored(self):
        server = LogServer()
        assert not server.receive(1.0, "GET /favicon.ico")
        assert len(server) == 0
        assert server.malformed_count == 1

    def test_reports_parse_in_arrival_order(self):
        server = LogServer()
        server.receive_report(2.0, mk_status()[0])
        server.receive_report(1.0, mk_status()[1])
        reports = list(server.reports())
        assert isinstance(reports[0], QoSReport)
        assert isinstance(reports[1], TrafficReport)

    def test_reports_of_filters_type(self):
        server = LogServer()
        for r in mk_status():
            server.receive_report(0.0, r)
        assert len(list(server.reports_of(QoSReport))) == 1

    def test_dump_load_roundtrip(self):
        server = LogServer()
        for r in mk_status():
            server.receive_report(5.0, r)
        text = server.dumps()
        back = LogServer.loads(text)
        assert len(back) == len(server)
        assert [e.log_string for e in back.entries()] == [
            e.log_string for e in server.entries()
        ]

    def test_dump_line_format(self):
        entry = LogEntry(3.125, "/log?a=b")
        assert entry.to_line() == "3.125 /log?a=b"
        assert LogEntry.from_line(entry.to_line()) == entry

    def test_load_skips_blank_lines(self):
        back = LogServer.load(io.StringIO("\n1.0 /log?a=b\n\n"))
        assert len(back) == 1

    def test_merged_with_sorts_by_arrival(self):
        a, b = LogServer(), LogServer()
        a.receive(5.0, "/log?x=1")
        b.receive(2.0, "/log?x=2")
        merged = a.merged_with(b)
        assert [e.arrival_time for e in merged.entries()] == [2.0, 5.0]


class TestReporter:
    def make(self, engine, server, period=300.0, delay=0.05):
        return NodeReporter(
            engine, server, node_id=1, user_id=2, session_id=3,
            uplink_delay_s=delay, status_period_s=period,
        )

    def test_activity_arrives_after_uplink_delay(self):
        engine, server = Engine(), LogServer()
        rep = self.make(engine, server, delay=0.5)
        rep.activity(ActivityEvent.JOIN)
        assert len(server) == 0
        engine.run(until=1.0)
        assert len(server) == 1
        assert server.entries()[0].arrival_time == pytest.approx(0.5)

    def test_status_cadence(self):
        engine, server = Engine(), LogServer()
        rep = self.make(engine, server, period=100.0)
        rep.install_status_provider(lambda: mk_status(engine.now))
        engine.run(until=350.0)
        # three firings x three reports each
        assert len(server) == 9

    def test_leave_closes_reporter(self):
        engine, server = Engine(), LogServer()
        rep = self.make(engine, server, period=100.0)
        rep.install_status_provider(lambda: mk_status(engine.now))
        engine.schedule(150.0, lambda: rep.activity(ActivityEvent.LEAVE))
        engine.run(until=500.0)
        # one status firing (t=100) + the final flush at leave (t=150)
        # + the leave activity itself; nothing after close
        types = [type(r).__name__ for r in server.reports()]
        assert types.count("QoSReport") == 2
        assert types.count("ActivityReport") == 1

    def test_leave_flushes_final_status_before_leave_report(self):
        """A graceful leave ships the partial status window so the
        session's last minutes reach the server (unlike a FAILURE)."""
        engine, server = Engine(), LogServer()
        rep = self.make(engine, server, period=300.0)
        rep.install_status_provider(lambda: mk_status(engine.now))
        engine.schedule(150.0, lambda: rep.activity(ActivityEvent.LEAVE))
        engine.run(until=1000.0)
        types = [type(r).__name__ for r in server.reports()]
        # the cadence never fired (period 300 > leave at 150), yet the
        # status triple is present -- and it precedes the leave report
        assert types == [
            "QoSReport", "TrafficReport", "PartnerReport", "ActivityReport",
        ]

    def test_silent_close_loses_pending_window(self):
        """The Section V.D artefact: whatever happened since the last
        5-minute report never reaches the server after an abrupt death."""
        engine, server = Engine(), LogServer()
        rep = self.make(engine, server, period=300.0)
        rep.install_status_provider(lambda: mk_status(engine.now))
        engine.schedule(299.0, lambda: rep.close(silent=True))
        engine.run(until=1000.0)
        assert len(list(server.reports_of(QoSReport))) == 0

    def test_partner_event_buffer_drains(self):
        engine, server = Engine(), LogServer()
        rep = self.make(engine, server)
        rep.record_partner_event(PartnerOp.ADD, 9, incoming=True)
        rep.record_partner_event(PartnerOp.DROP, 9, incoming=True)
        events = rep.drain_partner_events()
        assert len(events) == 2
        assert rep.drain_partner_events() == ()

    def test_no_events_recorded_after_close(self):
        engine, server = Engine(), LogServer()
        rep = self.make(engine, server)
        rep.close(silent=True)
        rep.record_partner_event(PartnerOp.ADD, 9, incoming=False)
        assert rep.drain_partner_events() == ()

    def test_activity_after_close_is_dropped(self):
        engine, server = Engine(), LogServer()
        rep = self.make(engine, server)
        rep.close(silent=True)
        rep.activity(ActivityEvent.LEAVE)
        engine.run(until=10.0)
        assert len(server) == 0
