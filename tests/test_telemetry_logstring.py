"""Unit and property tests for the log-string codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.logstring import decode_log_string, encode_log_string


class TestEncode:
    def test_basic_format(self):
        s = encode_log_string({"type": "act", "t": "1.5", "node": "7"})
        assert s == "/log?type=act&t=1.5&node=7"

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            encode_log_string({})

    def test_reserved_chars_in_values_escaped(self):
        s = encode_log_string({"a": "x&y=z"})
        assert "&y" not in s.split("?")[1].replace("%26", "")
        assert decode_log_string(s) == {"a": "x&y=z"}

    @pytest.mark.parametrize("bad", ["", "a=b", "a&b"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError):
            encode_log_string({bad: "v"})

    def test_insertion_order_preserved(self):
        s = encode_log_string({"b": "1", "a": "2"})
        assert s.index("b=1") < s.index("a=2")


class TestDecode:
    def test_roundtrip_simple(self):
        params = {"type": "qos", "ci": "0.98", "node": "42"}
        assert decode_log_string(encode_log_string(params)) == params

    def test_wrong_path_rejected(self):
        with pytest.raises(ValueError):
            decode_log_string("/stats?a=b")

    def test_missing_query_rejected(self):
        with pytest.raises(ValueError):
            decode_log_string("/log")

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            decode_log_string("/log?")

    def test_blank_values_kept(self):
        assert decode_log_string("/log?a=") == {"a": ""}


# printable text without characters that urlencode would lose in keys
_value = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    max_size=40,
)
_name = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz_0123456789"),
    min_size=1, max_size=12,
)


class TestProperties:
    @given(params=st.dictionaries(_name, _value, min_size=1, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_property_roundtrip(self, params):
        assert decode_log_string(encode_log_string(params)) == params


class TestEdgeCases:
    """Round-trips that have historically broken naive URL codecs."""

    def test_empty_value_roundtrip(self):
        params = {"reason": "", "node": "1"}
        assert decode_log_string(encode_log_string(params)) == params

    def test_all_values_empty(self):
        params = {"a": "", "b": ""}
        assert decode_log_string(encode_log_string(params)) == params

    @pytest.mark.parametrize("value", [
        "a&b", "a=b", "a&b=c&d", "&&", "==", "&=&=",
        "k1=v1&k2=v2",          # a value that *looks like* a query string
        "100%", "%26", "a+b",   # percent/plus must not double-decode
        " leading and trailing ",
    ])
    def test_reserved_chars_roundtrip(self, value):
        params = {"v": value}
        assert decode_log_string(encode_log_string(params)) == params

    @pytest.mark.parametrize("value", [
        "中文",             # CJK
        "café",                # latin-1 supplement
        "Ж",                   # cyrillic
        "emoji \U0001f600 ok",      # astral plane
        "mixed&中=文",      # unicode plus reserved chars
    ])
    def test_unicode_roundtrip(self, value):
        params = {"v": value}
        assert decode_log_string(encode_log_string(params)) == params

    @pytest.mark.parametrize("x", [
        0.1, 1 / 3, 2 ** -52, 1e-300, 1e300, 123456789.123456789,
        float("inf"), -0.0,
    ])
    def test_float_precision_survives(self, x):
        # clients stringify floats with repr(); the codec must hand back
        # the exact same string so the parse recovers the exact float
        s = encode_log_string({"ci": repr(x)})
        decoded = decode_log_string(s)["ci"]
        assert decoded == repr(x)
        assert float(decoded) == x or (x != x and decoded != decoded)

    def test_long_multiparam_roundtrip(self):
        params = {f"k{i}": f"v&{i}=x é" for i in range(50)}
        assert decode_log_string(encode_log_string(params)) == params
