"""Unit tests for the partnership manager."""

import pytest

from repro.core.buffer import BufferMap
from repro.core.partnership import Direction, PartnershipManager, PartnerState


def bm(*heads):
    return BufferMap(heads=tuple(heads), subscriptions=(False,) * len(heads))


class TestMembership:
    def test_add_and_get(self):
        pm = PartnershipManager(owner_id=1, max_partners=4)
        state = pm.add(2, Direction.OUTGOING, now=1.0)
        assert pm.get(2) is state
        assert 2 in pm
        assert len(pm) == 1

    def test_self_partnership_rejected(self):
        pm = PartnershipManager(owner_id=1, max_partners=4)
        with pytest.raises(ValueError):
            pm.add(1, Direction.OUTGOING, now=0.0)

    def test_duplicate_rejected(self):
        pm = PartnershipManager(owner_id=1, max_partners=4)
        pm.add(2, Direction.OUTGOING, now=0.0)
        with pytest.raises(ValueError):
            pm.add(2, Direction.INCOMING, now=1.0)

    def test_full_set_rejects(self):
        pm = PartnershipManager(owner_id=1, max_partners=2)
        pm.add(2, Direction.OUTGOING, now=0.0)
        pm.add(3, Direction.OUTGOING, now=0.0)
        assert pm.is_full
        with pytest.raises(OverflowError):
            pm.add(4, Direction.INCOMING, now=0.0)

    def test_remove_returns_state(self):
        pm = PartnershipManager(owner_id=1, max_partners=4)
        pm.add(2, Direction.OUTGOING, now=0.0)
        state = pm.remove(2)
        assert state.node_id == 2
        assert pm.remove(2) is None
        assert not pm.is_full

    def test_invalid_max_partners(self):
        with pytest.raises(ValueError):
            PartnershipManager(owner_id=1, max_partners=0)


class TestDirectionCounters:
    def test_incoming_counter_feeds_classifier(self):
        pm = PartnershipManager(owner_id=1, max_partners=8)
        assert not pm.has_incoming()
        pm.add(2, Direction.OUTGOING, now=0.0)
        assert not pm.has_incoming()
        pm.add(3, Direction.INCOMING, now=0.0)
        assert pm.has_incoming()
        assert pm.total_incoming_ever == 1
        assert pm.total_outgoing_ever == 1

    def test_counters_survive_removal(self):
        """Section V.B classifies by *ever* having incoming partners."""
        pm = PartnershipManager(owner_id=1, max_partners=8)
        pm.add(2, Direction.INCOMING, now=0.0)
        pm.remove(2)
        assert pm.has_incoming()


class TestBufferMaps:
    def test_record_bm_for_partner(self):
        pm = PartnershipManager(owner_id=1, max_partners=4)
        pm.add(2, Direction.OUTGOING, now=0.0)
        assert pm.record_bm(2, bm(5, 6), now=1.0)
        assert pm.get(2).bm.max_head == 6

    def test_record_bm_unknown_partner_discarded(self):
        pm = PartnershipManager(owner_id=1, max_partners=4)
        assert not pm.record_bm(9, bm(5, 6), now=1.0)

    def test_best_partner_head(self):
        pm = PartnershipManager(owner_id=1, max_partners=4)
        pm.add(2, Direction.OUTGOING, now=0.0)
        pm.add(3, Direction.OUTGOING, now=0.0)
        pm.record_bm(2, bm(5, 12), now=1.0)
        pm.record_bm(3, bm(30, 2), now=1.0)
        # max over all partners and all sub-streams (Inequality 2's left side)
        assert pm.best_partner_head() == 30

    def test_best_partner_head_without_bms(self):
        pm = PartnershipManager(owner_id=1, max_partners=4)
        pm.add(2, Direction.OUTGOING, now=0.0)
        assert pm.best_partner_head() == -1

    def test_partners_with_bm(self):
        pm = PartnershipManager(owner_id=1, max_partners=4)
        pm.add(2, Direction.OUTGOING, now=0.0)
        pm.add(3, Direction.OUTGOING, now=0.0)
        pm.record_bm(2, bm(1, 1), now=1.0)
        assert [s.node_id for s in pm.partners_with_bm()] == [2]


class TestStaleness:
    def test_bm_age_inf_before_first_bm(self):
        state = PartnerState(node_id=2, direction=Direction.OUTGOING,
                             established_at=0.0)
        assert state.bm_age(now=100.0) == float("inf")

    def test_fresh_partner_grace_period(self):
        """A just-established partnership is not stale even without a BM."""
        pm = PartnershipManager(owner_id=1, max_partners=4)
        pm.add(2, Direction.OUTGOING, now=100.0)
        assert pm.stale_partners(now=102.0, timeout_s=7.0) == []

    def test_silent_partner_becomes_stale(self):
        pm = PartnershipManager(owner_id=1, max_partners=4)
        pm.add(2, Direction.OUTGOING, now=0.0)
        pm.record_bm(2, bm(1), now=1.0)
        assert pm.stale_partners(now=5.0, timeout_s=7.0) == []
        assert pm.stale_partners(now=9.0, timeout_s=7.0) == [2]

    def test_chatty_partner_never_stale(self):
        pm = PartnershipManager(owner_id=1, max_partners=4)
        pm.add(2, Direction.OUTGOING, now=0.0)
        for t in range(1, 50, 2):
            pm.record_bm(2, bm(t), now=float(t))
        assert pm.stale_partners(now=50.0, timeout_s=7.0) == []
